// Package leakage implements the two classic leakage-reduction baselines
// the paper builds on and contrasts itself with in Sec. 2:
//
//   - Drowsy Cache (Flautner et al., ISCA 2002 — the paper's [9]):
//     periodically drop every line into a low-voltage state-retentive
//     "drowsy" mode; an access to a drowsy line pays a wake-up penalty
//     but no data is lost. Saves static power on idle lines without
//     capacity loss — but, as the paper stresses, the drowsy retention
//     voltage sits exactly where noise-margin faults explode, and the
//     technique has no fault-tolerance story.
//
//   - Gated-Vdd / cache decay (Powell et al., ISLPED 2000 — the paper's
//     [18]): power-gate lines that have not been used for a decay
//     interval. Gated lines leak ~nothing but lose their contents, so a
//     later access misses (and dirty lines must be written back first).
//
// Both operate at nominal VDD on a conventional cache; the paper's
// mechanism instead scales the whole data array's voltage and gates only
// the blocks that become faulty. expers.LeakageComparison puts all four
// (baseline, drowsy, decay, SPCS) on one table.
package leakage

import (
	"fmt"

	"repro/internal/cache"
)

// DrowsyParams configure the drowsy-cache technique.
type DrowsyParams struct {
	// IntervalCycles is the period after which every line is put into
	// drowsy mode (the original paper's "simple" policy, 4000 cycles).
	IntervalCycles uint64
	// WakeCycles is the extra latency of accessing a drowsy line.
	WakeCycles uint64
	// DrowsyLeakFactor is a drowsy line's leakage relative to active
	// (the retention voltage's leakage, ~0.25 in the original work).
	DrowsyLeakFactor float64
}

// DefaultDrowsyParams returns the original paper's simple-policy values.
func DefaultDrowsyParams() DrowsyParams {
	return DrowsyParams{IntervalCycles: 4000, WakeCycles: 1, DrowsyLeakFactor: 0.25}
}

// DrowsyCache wraps a cache with the drowsy technique and integrates its
// data-array leakage over time.
type DrowsyCache struct {
	C      *cache.Cache
	P      DrowsyParams
	drowsy []bool
	// Energy integration: leakage in units of (active-line-cycles).
	lastCycle        uint64
	activeLineCycles float64
	nextDoze         uint64
	// Wakes counts drowsy lines woken by accesses.
	Wakes uint64
}

// NewDrowsy wraps c.
func NewDrowsy(c *cache.Cache, p DrowsyParams) *DrowsyCache {
	if p.IntervalCycles == 0 {
		p = DefaultDrowsyParams()
	}
	return &DrowsyCache{C: c, P: p, drowsy: make([]bool, c.NumBlocks()),
		nextDoze: p.IntervalCycles}
}

// advance integrates leakage up to now, applying the periodic global
// doze at each interval boundary it crosses (the doze is a timer, not an
// access side effect: an idle cache still dozes).
func (d *DrowsyCache) advance(now uint64) {
	for d.lastCycle < now {
		segEnd := now
		dozeHere := false
		if d.nextDoze > d.lastCycle && d.nextDoze <= now {
			segEnd = d.nextDoze
			dozeHere = true
		}
		dc := float64(segEnd - d.lastCycle)
		awake := 0
		for _, dr := range d.drowsy {
			if !dr {
				awake++
			}
		}
		asleep := d.C.NumBlocks() - awake
		d.activeLineCycles += dc * (float64(awake) + d.P.DrowsyLeakFactor*float64(asleep))
		d.lastCycle = segEnd
		if dozeHere {
			for i := range d.drowsy {
				d.drowsy[i] = true
			}
			d.nextDoze += d.P.IntervalCycles
		}
	}
}

// Access performs one access at cycle now, returning the extra latency
// the technique adds (the wake-up penalty, if any).
func (d *DrowsyCache) Access(addr uint64, write bool, now uint64) (res cache.AccessResult, extra uint64) {
	d.advance(now) // applies any pending global dozes
	res = d.C.Access(addr, write)
	if res.Hit || res.Fill {
		if set, way, ok := d.C.FindFrame(addr &^ uint64(d.C.BlockBytes()-1)); ok {
			idx := d.C.BlockIndex(set, way)
			if d.drowsy[idx] {
				d.drowsy[idx] = false
				d.Wakes++
				extra = d.P.WakeCycles
			} else if res.Fill {
				d.drowsy[idx] = false
			}
		}
	}
	return res, extra
}

// ActiveLineCycles finalises integration at now and returns the
// accumulated full-leakage line-cycles (multiply by per-line leakage
// power / clock to get joules).
func (d *DrowsyCache) ActiveLineCycles(now uint64) float64 {
	d.advance(now)
	return d.activeLineCycles
}

// DecayParams configure the cache-decay (Gated-Vdd) technique.
type DecayParams struct {
	// IntervalCycles is the idle time after which a line is gated.
	IntervalCycles uint64
	// SweepCycles is how often the decay counters are checked.
	SweepCycles uint64
}

// DefaultDecayParams returns classic competitive cache-decay values:
// the decay interval must comfortably exceed typical reuse distances or
// the induced misses swamp the leakage savings (the original paper's
// adaptive variants exist precisely because of that trade-off).
func DefaultDecayParams() DecayParams {
	return DecayParams{IntervalCycles: 262144, SweepCycles: 16384}
}

// DecayCache wraps a cache with the decay technique.
type DecayCache struct {
	C *cache.Cache
	P DecayParams
	// lastUse tracks each frame's last access cycle.
	lastUse []uint64
	off     []bool
	// Energy integration in active-line-cycles (off lines leak zero).
	lastCycle        uint64
	activeLineCycles float64
	nextSweep        uint64
	// DecayedLines counts lines turned off; DecayWritebacks the dirty
	// ones written back on the way out.
	DecayedLines    uint64
	DecayWritebacks uint64
	// sink receives decay writebacks.
	sink func(addr uint64)
}

// NewDecay wraps c; sink receives the writebacks of dirty decayed lines
// (may be nil).
func NewDecay(c *cache.Cache, p DecayParams, sink func(addr uint64)) *DecayCache {
	if p.IntervalCycles == 0 {
		p = DefaultDecayParams()
	}
	return &DecayCache{C: c, P: p, lastUse: make([]uint64, c.NumBlocks()),
		off: make([]bool, c.NumBlocks()), nextSweep: p.SweepCycles, sink: sink}
}

func (d *DecayCache) advance(now uint64) {
	dc := float64(now - d.lastCycle)
	if dc <= 0 {
		d.lastCycle = now
		return
	}
	on := 0
	for _, o := range d.off {
		if !o {
			on++
		}
	}
	d.activeLineCycles += dc * float64(on)
	d.lastCycle = now
}

// sweep gates every line idle longer than the decay interval.
func (d *DecayCache) sweep(now uint64) {
	for s := 0; s < d.C.Sets(); s++ {
		for w := 0; w < d.C.Ways(); w++ {
			idx := d.C.BlockIndex(s, w)
			if d.off[idx] {
				continue
			}
			if now-d.lastUse[idx] < d.P.IntervalCycles {
				continue
			}
			// Idle long enough: gate the frame. Valid dirty contents are
			// written back first; invalid (never-used) frames gate for
			// free — Gated-Vdd's original target was exactly such unused
			// capacity.
			if meta := d.C.Meta(s, w); meta.Valid {
				if need, addr := d.C.InvalidateFrame(s, w); need {
					d.DecayWritebacks++
					if d.sink != nil {
						d.sink(addr)
					}
				}
			}
			d.off[idx] = true
			d.DecayedLines++
		}
	}
}

// Access performs one access at cycle now. Gated frames power back on
// transparently when the LRU fill reuses them (zero extra latency in the
// original design; the miss itself is the cost).
func (d *DecayCache) Access(addr uint64, write bool, now uint64) cache.AccessResult {
	d.advance(now)
	if now >= d.nextSweep {
		d.sweep(now)
		d.nextSweep = now + d.P.SweepCycles
	}
	res := d.C.Access(addr, write)
	if set, way, ok := d.C.FindFrame(addr &^ uint64(d.C.BlockBytes()-1)); ok {
		idx := d.C.BlockIndex(set, way)
		d.lastUse[idx] = now
		d.off[idx] = false // the frame is in use again
	}
	return res
}

// ActiveLineCycles finalises integration at now.
func (d *DecayCache) ActiveLineCycles(now uint64) float64 {
	d.advance(now)
	return d.activeLineCycles
}

// String summarises decay activity.
func (d *DecayCache) String() string {
	return fmt.Sprintf("decay: %d lines gated, %d writebacks", d.DecayedLines, d.DecayWritebacks)
}
