package waygate

import (
	"math"
	"testing"

	"repro/internal/cacti"
	"repro/internal/device"
)

func model(t *testing.T) *Model {
	t.Helper()
	org := cacti.Org{Name: "L1-A", SizeBytes: 64 << 10, Assoc: 4, BlockBytes: 64, AddrBits: 40}
	cm, err := cacti.New(org, device.Tech45SOI(), cacti.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return New(cm)
}

func TestCapacityLinear(t *testing.T) {
	m := model(t)
	for w := 0; w <= 4; w++ {
		want := float64(w) / 4
		if got := m.EffectiveCapacity(w); math.Abs(got-want) > 1e-12 {
			t.Errorf("capacity(%d ways) = %v", w, got)
		}
	}
}

func TestCapacityClamped(t *testing.T) {
	m := model(t)
	if m.EffectiveCapacity(-1) != 0 || m.EffectiveCapacity(9) != 1 {
		t.Error("capacity not clamped")
	}
}

func TestPowerLinearInWays(t *testing.T) {
	m := model(t)
	p0 := m.StaticPower(0)
	p4 := m.StaticPower(4)
	p2 := m.StaticPower(2)
	// The array part is linear: p2 must be exactly the midpoint.
	if math.Abs(p2-(p0+p4)/2)/p4 > 1e-12 {
		t.Errorf("midpoint power %v, want %v", p2, (p0+p4)/2)
	}
	if p0 <= 0 {
		t.Error("zero-way power should keep the tag/periphery floor")
	}
}

func TestCurveShape(t *testing.T) {
	m := model(t)
	caps, watts := m.PowerCapacityCurve()
	if len(caps) != 5 || len(watts) != 5 {
		t.Fatalf("curve lengths %d/%d", len(caps), len(watts))
	}
	for i := 1; i < len(watts); i++ {
		if watts[i] <= watts[i-1] || caps[i] <= caps[i-1] {
			t.Fatalf("curve not increasing at %d", i)
		}
	}
}

func TestProposedBeatsWayGating(t *testing.T) {
	// Fig. 3a: way gating's linear trade-off is dominated by the
	// proposed mechanism at matched capacity (the proposed scheme keeps
	// blocks at reduced voltage rather than losing whole ways at full
	// voltage). Compare at 75% capacity.
	m := model(t)
	wgPower := m.StaticPower(3)
	pcs := m.CM.WithPCS(2)
	// The proposed mechanism at 75% capacity: worst case voltage 0.45 V
	// (capacity falls to ~75% near there); any voltage achieving >= 75%
	// with less power wins.
	best := math.Inf(1)
	for v := 0.40; v <= 1.0; v += 0.01 {
		best = math.Min(best, pcs.StaticPower(v, 0.75).TotalW)
	}
	if best >= wgPower {
		t.Errorf("proposed %v W >= way gating %v W at 75%% capacity", best, wgPower)
	}
}
