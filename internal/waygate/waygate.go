// Package waygate models the generic way-granularity power-gating
// baseline of Fig. 3a: capacity is reduced by switching off whole ways
// at nominal voltage (as in Gated-Vdd-style resizing), giving a linear
// power/effective-capacity trade-off — the straight line the proposed
// mechanism beats at every capacity point.
package waygate

import (
	"repro/internal/cacti"
	"repro/internal/device"
)

// Model evaluates way-based gating on a cache organisation.
type Model struct {
	CM *cacti.Model
}

// New wraps a cacti model.
func New(cm *cacti.Model) *Model { return &Model{CM: cm} }

// StaticPower returns total static power with activeWays of the cache's
// ways powered (the rest gated to ~zero), everything at nominal VDD.
func (m *Model) StaticPower(activeWays int) float64 {
	org := m.CM.Org
	if activeWays < 0 {
		activeWays = 0
	}
	if activeWays > org.Assoc {
		activeWays = org.Assoc
	}
	t := m.CM.Tech
	frac := float64(activeWays) / float64(org.Assoc)
	dataCells := float64(org.Blocks()*org.BlockBits()) * frac
	cellW := dataCells * m.CM.Params.CellLeakEquiv * t.LeakagePower(device.RVT, t.VDDNom)
	// Tag and periphery stay powered (tags of gated ways could be gated
	// too, but the dominant term is the data array; keeping the floor
	// shared across schemes makes Fig. 3a an apples-to-apples plot).
	base := m.CM.StaticPower(t.VDDNom, 1)
	return cellW + base.DataPeripheryW + base.TagW
}

// EffectiveCapacity returns the usable-block fraction with activeWays
// powered: exactly linear.
func (m *Model) EffectiveCapacity(activeWays int) float64 {
	if activeWays < 0 {
		activeWays = 0
	}
	if activeWays > m.CM.Org.Assoc {
		activeWays = m.CM.Org.Assoc
	}
	return float64(activeWays) / float64(m.CM.Org.Assoc)
}

// PowerCapacityCurve returns (capacity, power) pairs for every possible
// way count, 0..assoc.
func (m *Model) PowerCapacityCurve() (caps, watts []float64) {
	for w := 0; w <= m.CM.Org.Assoc; w++ {
		caps = append(caps, m.EffectiveCapacity(w))
		watts = append(watts, m.StaticPower(w))
	}
	return caps, watts
}
