package multicore

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/trace"
)

// runWith builds a fresh multi-core System and drives it through either
// the sharded per-core block feeds or the retained scalar interleave.
func runWith(t *testing.T, cfg Config, mode core.Mode, w trace.Workload, warm, instr, seed uint64, scalar bool) Result {
	t.Helper()
	sys, err := newSystem(cfg, mode, w, seed)
	if err != nil {
		t.Fatal(err)
	}
	sys.scalarLoop = scalar
	res, err := sys.run(context.Background(), warm, instr)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestShardedMatchesSerial is the multi-core half of the tentpole's
// safety harness: the sharded generation path (per-core producer
// goroutines over reused block arenas) must be observationally
// identical to the serial reference interleave — same per-core cycles
// and stats, same coherence invalidations, same L2 behaviour and
// energies — across all three modes and randomized window lengths.
func TestShardedMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("differential run is slow")
	}
	rng := stats.NewRNG(0x5a4d ^ 0x1234)
	suite := trace.Suite()
	// Alternate GOMAXPROCS so both pipe shapes (synchronous refill and
	// producer goroutines) are exercised on any host.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for i, mode := range []core.Mode{core.Baseline, core.SPCS, core.DPCS} {
		runtime.GOMAXPROCS(1 + i%2)
		w := suite[rng.Intn(len(suite))]
		cfg := DefaultConfig()
		cfg.Cores = 2 + rng.Intn(3)
		// Odd lengths land the warm-up/measure boundary mid-block.
		warm := 20_000 + uint64(rng.Intn(3_000))
		instr := 60_000 + uint64(rng.Intn(10_000))
		seed := uint64(rng.Intn(1 << 20))
		sharded := runWith(t, cfg, mode, w, warm, instr, seed, false)
		serial := runWith(t, cfg, mode, w, warm, instr, seed, true)
		if !reflect.DeepEqual(sharded, serial) {
			t.Fatalf("case %d (%s/%v cores=%d seed=%d): sharded run diverges from serial\nsharded: %+v\nserial:  %+v",
				i, w.Name, mode, cfg.Cores, seed, sharded, serial)
		}
	}
}

// countingGen wraps a generator, counting instructions and firing a
// cancel mid-block; see the cpusim counterpart.
type countingGen struct {
	inner  trace.Generator
	at     uint64
	count  uint64
	cancel context.CancelFunc
}

func (g *countingGen) Name() string { return g.inner.Name() }

func (g *countingGen) Next(ins *trace.Instr) {
	g.count++
	if g.count == g.at {
		g.cancel()
	}
	g.inner.Next(ins)
}

// TestCancelBoundedBySweepAndBlock pins the sharded loop's cancellation
// granularity: after a cancel fires, every core generates at most its
// pipe's two arena blocks plus the in-flight sweep before the loop
// observes ctx at the next poll.
func TestCancelBoundedBySweepAndBlock(t *testing.T) {
	// Force the threaded pipe shape so the producer run-ahead bound is
	// what's actually under test, even on a single-CPU host.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(2))
	w, ok := trace.ByName("bzip2.s")
	if !ok {
		t.Fatal("bzip2.s missing from suite")
	}
	cfg := DefaultConfig()
	cfg.Cores = 3
	sys, err := newSystem(cfg, core.DPCS, w, 7)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Wrap every core's generator; the middle core fires the cancel a
	// third of the way into one of its blocks, past warm-up.
	gens := make([]*countingGen, len(sys.cores))
	for i, c := range sys.cores {
		g := &countingGen{inner: c.gen}
		if i == 1 {
			g.at = 30_000 + trace.BlockSize/3
			g.cancel = cancel
		} else {
			g.at = ^uint64(0) // never fires
		}
		gens[i] = g
		c.gen = g
	}
	_, err = sys.run(ctx, 20_000, 1_000_000_000)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The cancel is observed within one poll window of the interleave
	// (ctxCheckMask+1 sweeps); beyond that each producer can only run
	// its two arena blocks ahead.
	const slack = 2*trace.BlockSize + (ctxCheckMask + 1)
	for i, g := range gens {
		if g.count > gens[1].at+slack {
			t.Fatalf("core %d generated %d instructions, want <= %d (cancel at %d + slack %d)",
				i, g.count, gens[1].at+slack, gens[1].at, slack)
		}
	}
}
