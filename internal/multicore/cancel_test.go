package multicore

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
)

// TestRunContextCancelled checks a cancelled campaign context stops the
// interleaved multi-core loop mid-simulation.
func TestRunContextCancelled(t *testing.T) {
	w, ok := trace.ByName("gobmk.s")
	if !ok {
		t.Fatal("gobmk.s missing from suite")
	}
	cfg := DefaultConfig()
	cfg.Cores = 2
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(30*time.Millisecond, cancel)
	start := time.Now()
	_, err := RunContext(ctx, cfg, core.Baseline, w, 10_000, 1_000_000_000, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled run took %s", elapsed)
	}
}

// TestRunContextBackgroundMatchesRun checks the context plumbing does
// not perturb results.
func TestRunContextBackgroundMatchesRun(t *testing.T) {
	w, _ := trace.ByName("gobmk.s")
	cfg := DefaultConfig()
	cfg.Cores = 2
	a, err := Run(cfg, core.SPCS, w, 2_000, 10_000, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunContext(context.Background(), cfg, core.SPCS, w, 2_000, 10_000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.GlobalCycles != b.GlobalCycles || a.TotalCacheEnergyJ != b.TotalCacheEnergyJ {
		t.Fatalf("Run != RunContext: %v vs %v cycles", a.GlobalCycles, b.GlobalCycles)
	}
}
