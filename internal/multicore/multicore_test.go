package multicore

import (
	"testing"

	"repro/internal/core"
	"repro/internal/cpusim"
	"repro/internal/trace"
)

func testWorkload() trace.Workload {
	return trace.Workload{
		Name: "mc-unit", CodeBytes: 16 << 10, JumpProb: 0.02, ZipfS: 1.1,
		Phases: []trace.Phase{{
			Instructions: 1 << 40, WorkingSetBytes: 256 << 10,
			Mix: trace.PatternMix{Zipf: 0.6, Seq: 0.2}, WriteFrac: 0.3, MemFrac: 0.4,
		}},
	}
}

func smallConfig(cores int) Config {
	return Config{
		System:                 cpusim.ConfigA(),
		Cores:                  cores,
		SharedBytes:            256 << 10,
		SharedFrac:             0.2,
		CoherencePenaltyCycles: 20,
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bads := []Config{
		{System: cpusim.ConfigA(), Cores: 0},
		{System: cpusim.ConfigA(), Cores: 2, SharedFrac: 1.5},
		{System: cpusim.ConfigA(), Cores: 2, SharedFrac: 0.1, SharedBytes: 0},
	}
	for i, c := range bads {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
}

func TestFourCoreBaselineRuns(t *testing.T) {
	r, err := Run(smallConfig(4), core.Baseline, testWorkload(), 20_000, 100_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cores) != 4 {
		t.Fatalf("%d core results", len(r.Cores))
	}
	for _, c := range r.Cores {
		if c.Instructions != 100_000 || c.Cycles == 0 || c.IPC <= 0 {
			t.Errorf("core %d: %+v", c.CoreID, c)
		}
		if c.L1I.Accesses != c.Instructions {
			t.Errorf("core %d L1I accesses %d", c.CoreID, c.L1I.Accesses)
		}
	}
	if r.TotalCacheEnergyJ <= 0 || r.L2EnergyJ <= 0 {
		t.Error("no energy accounted")
	}
	if r.GlobalCycles == 0 {
		t.Error("zero global cycles")
	}
}

func TestCoherenceInvalidationsHappen(t *testing.T) {
	// With a shared region and writes, remote copies must get
	// invalidated.
	r, err := Run(smallConfig(4), core.Baseline, testWorkload(), 20_000, 200_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.CoherenceInvalidations == 0 {
		t.Fatal("no coherence invalidations despite shared writes")
	}
	var perCore uint64
	for _, c := range r.Cores {
		perCore += c.Invalidated
	}
	if perCore != r.CoherenceInvalidations {
		t.Errorf("per-core invalidations %d != total %d", perCore, r.CoherenceInvalidations)
	}
}

func TestNoSharingNoInvalidations(t *testing.T) {
	cfg := smallConfig(4)
	cfg.SharedFrac = 0
	cfg.SharedBytes = 0
	r, err := Run(cfg, core.Baseline, testWorkload(), 20_000, 100_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.CoherenceInvalidations != 0 {
		t.Fatalf("%d invalidations with disjoint address spaces", r.CoherenceInvalidations)
	}
}

func TestSingleCoreDegenerates(t *testing.T) {
	cfg := smallConfig(1)
	r, err := Run(cfg, core.Baseline, testWorkload(), 20_000, 100_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.CoherenceInvalidations != 0 {
		t.Error("single core invalidated itself")
	}
}

func TestSPCSStillSavesEnergyMulticore(t *testing.T) {
	w := testWorkload()
	base, err := Run(smallConfig(2), core.Baseline, w, 50_000, 300_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	spcs, err := Run(smallConfig(2), core.SPCS, w, 50_000, 300_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	saving := 1 - spcs.TotalCacheEnergyJ/base.TotalCacheEnergyJ
	if saving < 0.35 || saving > 0.75 {
		t.Errorf("multicore SPCS saving %v", saving)
	}
	overhead := float64(spcs.GlobalCycles)/float64(base.GlobalCycles) - 1
	if overhead > 0.05 {
		t.Errorf("multicore SPCS overhead %v", overhead)
	}
}

func TestDPCSRunsMulticore(t *testing.T) {
	r, err := Run(smallConfig(2), core.DPCS, testWorkload(), 100_000, 500_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Mode != core.DPCS {
		t.Error("mode label")
	}
	// The shared L2 policy must have acted at least once (its Start
	// transition happens before measurement; dwell changes need traffic).
	if r.L2.Accesses == 0 {
		t.Fatal("no L2 traffic")
	}
}

func TestMulticoreDeterministic(t *testing.T) {
	a, err := Run(smallConfig(2), core.SPCS, testWorkload(), 10_000, 100_000, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smallConfig(2), core.SPCS, testWorkload(), 10_000, 100_000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.GlobalCycles != b.GlobalCycles || a.TotalCacheEnergyJ != b.TotalCacheEnergyJ {
		t.Fatal("same-seed multicore runs differ")
	}
}

func TestMoreCoresMoreL2Pressure(t *testing.T) {
	w := testWorkload()
	r1, err := Run(smallConfig(1), core.Baseline, w, 20_000, 150_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Run(smallConfig(4), core.Baseline, w, 20_000, 150_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r4.L2.Accesses <= r1.L2.Accesses {
		t.Errorf("4-core L2 accesses %d not above 1-core %d", r4.L2.Accesses, r1.L2.Accesses)
	}
}

func TestDirectory(t *testing.T) {
	d := newDirectory()
	d.addSharer(0x1000, 0)
	d.addSharer(0x1000, 2)
	mask := d.othersHolding(0x1000, 0)
	if mask != 1<<2 {
		t.Fatalf("others mask %b", mask)
	}
	// After the writer claimed exclusivity, only core 0 remains.
	if m := d.othersHolding(0x1000, 0); m != 0 {
		t.Fatalf("stale sharers %b", m)
	}
	d.drop(0x1000, 0)
	if len(d.sharers) != 0 {
		t.Error("directory entry not reclaimed")
	}
}
