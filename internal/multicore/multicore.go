// Package multicore extends the evaluation to the paper's stated future
// work: "a broader design space exploration involving multi-core systems
// with consideration of cache coherence". It models N cores with private
// split L1 caches over one shared L2, all managed by the same
// power/capacity-scaling controllers as the single-core simulator, with
// an MSI-style invalidation protocol (directory at the L2) keeping the
// private L1Ds coherent.
//
// Timing uses the same blocking-miss accounting as internal/cpusim, per
// core; the run's wall-clock is the slowest core, and the shared L2's
// static energy integrates over that global time. The interesting
// questions this substrate answers: does DPCS's voltage ladder still pay
// when the L2 is contended by several working sets, and what do
// coherence invalidations do to the transition procedure's writeback
// traffic.
//
// # Concurrency contract
//
// The cores of one System share the L2 controller and the coherence
// directory, so a System is confined to one goroutine (cores are
// interleaved round-robin on a single goroutine, not parallelised).
// Parallelism happens one level up: build one System per concurrent
// Run/RunContext call — the package has no global mutable state, which
// is what lets internal/runner fan multicore jobs out across workers.
//
// Multicore is excluded from the per-worker arenas of DESIGN.md §13: a
// System keeps the shared-L2 host and every per-core cpusim.System live
// at the same time, so a single resettable arena cannot back them. It
// still benefits from the memoized CACTI/fault-model statics, which are
// immutable after first compute and safe to share across goroutines.
package multicore

import (
	"context"
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/cpusim"
	"repro/internal/obs/tracez"
	"repro/internal/trace"
)

// Config parameterises a multi-core run.
type Config struct {
	// System is the per-core cache configuration (Config A or B); every
	// core gets private L1I/L1D of this shape, and one shared L2.
	System cpusim.SystemConfig
	// Cores is the number of cores (>= 1).
	Cores int
	// SharedBytes is the size of the region all cores share; data
	// accesses land there with probability SharedFrac, giving the
	// coherence protocol something to do.
	SharedBytes uint64
	// SharedFrac is the probability a data access targets shared data.
	SharedFrac float64
	// CoherencePenaltyCycles is charged to a writer that must
	// invalidate remote copies.
	CoherencePenaltyCycles uint64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Cores < 1 {
		return fmt.Errorf("multicore: %d cores", c.Cores)
	}
	if c.SharedFrac < 0 || c.SharedFrac > 1 {
		return fmt.Errorf("multicore: shared fraction %v", c.SharedFrac)
	}
	if c.SharedFrac > 0 && c.SharedBytes == 0 {
		return fmt.Errorf("multicore: shared fraction without a shared region")
	}
	return nil
}

// DefaultConfig returns a 4-core Config-A system with a modest shared
// region.
func DefaultConfig() Config {
	return Config{
		System:                 cpusim.ConfigA(),
		Cores:                  4,
		SharedBytes:            1 << 20,
		SharedFrac:             0.10,
		CoherencePenaltyCycles: 20,
	}
}

// directory tracks which cores may hold each block in their private
// L1Ds. It over-approximates (clean evictions are not reported), which
// is safe: invalidations of absent blocks are no-ops.
type directory struct {
	sharers map[uint64]uint32 // block address -> core bitmask
}

func newDirectory() *directory {
	return &directory{sharers: make(map[uint64]uint32)}
}

func (d *directory) addSharer(addr uint64, coreID int) {
	d.sharers[addr] |= 1 << uint(coreID)
}

// othersHolding returns the cores other than coreID that may hold addr,
// and clears them from the directory (they are about to be invalidated).
func (d *directory) othersHolding(addr uint64, coreID int) uint32 {
	mask := d.sharers[addr] &^ (1 << uint(coreID))
	if mask != 0 {
		d.sharers[addr] = 1 << uint(coreID)
	}
	return mask
}

func (d *directory) drop(addr uint64, coreID int) {
	if m, ok := d.sharers[addr]; ok {
		m &^= 1 << uint(coreID)
		if m == 0 {
			delete(d.sharers, addr)
		} else {
			d.sharers[addr] = m
		}
	}
}

// coreState is one core's private hierarchy and clock.
type coreState struct {
	id               int
	gen              trace.Generator
	pipe             *trace.Pipe // per-core block feed (sharded generation)
	l1i              *core.Controller
	l1d              *core.Controller
	l1iPol           *core.DPCSPolicy
	l1dPol           *core.DPCSPolicy
	l1iSPCS, l1dSPCS int
	invalidated      uint64
	cycles           uint64
	instrs           uint64
	// dataBase relocates this core's private data region.
	dataBase uint64
}

// CoreResult summarises one core's run.
type CoreResult struct {
	CoreID       int
	Instructions uint64
	Cycles       uint64
	IPC          float64
	L1I, L1D     cache.Stats
	L1EnergyJ    float64
	Invalidated  uint64 // blocks lost to remote writers
}

// Result is the outcome of a multi-core run.
type Result struct {
	Mode         core.Mode
	Cores        []CoreResult
	GlobalCycles uint64
	Seconds      float64
	L2           cache.Stats
	L2EnergyJ    float64
	// TotalCacheEnergyJ includes every L1 and the shared L2.
	TotalCacheEnergyJ float64
	// CoherenceInvalidations counts L1D blocks invalidated by remote
	// writers.
	CoherenceInvalidations uint64
	// L2Transitions counts shared-L2 voltage transitions.
	L2Transitions int
}

// System is a prepared multi-core simulator.
type System struct {
	cfg    Config
	mode   core.Mode
	cores  []*coreState
	l2     *core.Controller
	l2Pol  *core.DPCSPolicy
	dir    *directory
	global uint64 // monotone global clock for the shared L2
	cohInv uint64
	l2SPCS int
	// scalarLoop selects the retained per-instruction reference
	// interleave instead of the sharded block feeds; the differential
	// tests set it.
	scalarLoop bool
}

// builderFacade reuses cpusim's per-level construction through its
// exported surface: we build one single-core system per core for the
// private L1s and one more for the shared L2.
func newSystem(cfg Config, mode core.Mode, w trace.Workload, seed uint64) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sys := &System{cfg: cfg, mode: mode, dir: newDirectory()}

	// Shared L2 from a dedicated single-core build.
	l2Host, err := cpusim.NewSystem(cfg.System, mode, seed)
	if err != nil {
		return nil, err
	}
	sys.l2 = l2Host.L2Controller()
	sys.l2Pol = l2Host.L2Policy()
	_, _, sys.l2SPCS = l2Host.SPCSLevels()

	for i := 0; i < cfg.Cores; i++ {
		host, err := cpusim.NewSystem(cfg.System, mode, seed+uint64(i)*7919)
		if err != nil {
			return nil, err
		}
		gen, err := trace.New(w, seed+uint64(i)*104729)
		if err != nil {
			return nil, err
		}
		l1iSPCS, l1dSPCS, _ := host.SPCSLevels()
		cs := &coreState{
			id:       i,
			gen:      gen,
			l1i:      host.L1IController(),
			l1d:      host.L1DController(),
			l1iPol:   host.L1IPolicy(),
			l1dPol:   host.L1DPolicy(),
			l1iSPCS:  l1iSPCS,
			l1dSPCS:  l1dSPCS,
			dataBase: uint64(i+1) << 33, // 8 GiB apart: private regions
		}
		sys.cores = append(sys.cores, cs)
	}
	return sys, nil
}

// start applies the initial policy transitions.
func (s *System) start() {
	switch s.mode {
	case core.SPCS:
		for _, c := range s.cores {
			core.ApplySPCS(c.l1i, c.l1iSPCS, s.writebackToL2)
			core.ApplySPCS(c.l1d, c.l1dSPCS, s.writebackToL2)
		}
		core.ApplySPCS(s.l2, s.l2SPCS, nil)
	case core.DPCS:
		for _, c := range s.cores {
			c.l1iPol.Start(s.writebackToL2)
			c.l1dPol.Start(s.writebackToL2)
		}
		s.l2Pol.Start(nil)
	}
}

func (s *System) arm() {
	for _, c := range s.cores {
		if c.l1iPol != nil {
			c.l1iPol.Arm(c.cycles)
		}
		if c.l1dPol != nil {
			c.l1dPol.Arm(c.cycles)
		}
	}
	if s.l2Pol != nil {
		s.l2Pol.Arm(s.global)
	}
}

// bump advances the monotone global clock used by the shared L2.
func (s *System) bump(coreCycles uint64) uint64 {
	if coreCycles > s.global {
		s.global = coreCycles
	}
	return s.global
}

func (s *System) writebackToL2(addr uint64) {
	res := s.l2.Cache.Access(addr, true)
	s.l2.OnAccess(true)
	if res.Fill && !res.Hit {
		s.l2.OnFill()
	}
}

// accessL2 performs a demand access on the shared L2 on behalf of a
// core, returning the stall.
func (s *System) accessL2(c *coreState, addr uint64, write bool) uint64 {
	stall := s.cfg.System.L2.HitCycles
	res := s.l2.Cache.Access(addr, write)
	s.l2.OnAccess(write)
	if !res.Hit {
		s.l2.NoteMiss(addr &^ uint64(s.l2.Cache.BlockBytes()-1))
		stall += s.cfg.System.MemCycles
		if res.Fill {
			s.l2.OnFill()
		}
	}
	if s.l2Pol != nil {
		// The global-clock bump stays unconditional (skipping it would
		// change the `now` a later due Tick observes); only the Tick —
		// a no-op between sampling boundaries — is fast-forwarded.
		now := s.bump(c.cycles)
		if s.l2Pol.Due() {
			s.l2Pol.Tick(now, nil)
		}
	}
	return stall
}

// translate maps a generator data address into the core's private region
// or the shared region. The generator's low bits select within the
// region; the decision reuses address entropy so it is deterministic.
func (s *System) translate(c *coreState, addr uint64) uint64 {
	if s.cfg.SharedFrac > 0 {
		// Hash the block address to decide shared vs private; a cheap
		// multiplicative hash keeps the decision stable per block.
		h := (addr >> 6) * 0x9e3779b97f4a7c15
		if float64(h>>40)/float64(1<<24) < s.cfg.SharedFrac {
			return addr % s.cfg.SharedBytes // shared region at 0
		}
	}
	return c.dataBase + addr
}

// accessL1D performs a data access with coherence.
func (s *System) accessL1D(c *coreState, addr uint64, write bool) uint64 {
	blk := addr &^ uint64(c.l1d.Cache.BlockBytes()-1)
	var stall uint64
	if write {
		// Invalidate remote copies (MSI: writer gains exclusivity).
		if mask := s.dir.othersHolding(blk, c.id); mask != 0 {
			for _, other := range s.cores {
				if mask&(1<<uint(other.id)) == 0 {
					continue
				}
				if set, way, ok := other.l1d.Cache.FindFrame(blk); ok {
					if need, a := other.l1d.Cache.InvalidateFrame(set, way); need {
						s.writebackToL2(a)
					}
					other.invalidated++
					s.cohInv++
				}
			}
			stall += s.cfg.CoherencePenaltyCycles
		}
	}
	// Memoized repeat-block hit: identical observable effects to the
	// probe-loop hit below (including the directory note), with the set
	// probe skipped. Coherence invalidations drop the memo, so a block
	// stolen by a remote writer can never fast-hit.
	if c.l1d.Cache.FastHit(addr, write) {
		c.l1d.OnAccess(write)
		s.dir.addSharer(blk, c.id)
		if c.l1dPol != nil && c.l1dPol.Due() {
			c.cycles += c.l1dPol.Tick(c.cycles, s.writebackToL2)
		}
		return stall
	}
	res := c.l1d.Cache.AccessFull(addr, write)
	c.l1d.OnAccess(write)
	if res.Hit {
		s.dir.addSharer(blk, c.id)
	} else {
		c.l1d.NoteMiss(blk)
		if res.Fill {
			c.l1d.OnFill()
			s.dir.addSharer(blk, c.id)
		}
		if res.Writeback {
			s.dir.drop(res.WritebackAddr, c.id)
			s.writebackToL2(res.WritebackAddr)
		}
		stall += s.accessL2(c, addr, write)
	}
	if c.l1dPol != nil && c.l1dPol.Due() {
		c.cycles += c.l1dPol.Tick(c.cycles, s.writebackToL2)
	}
	return stall
}

// accessL1I performs an instruction fetch (no coherence: code is
// read-only). Sequential fetch runs make the memoized repeat-block hit
// the dominant outcome.
func (s *System) accessL1I(c *coreState, addr uint64) uint64 {
	if c.l1i.Cache.FastHit(addr, false) {
		c.l1i.OnAccess(false)
		if c.l1iPol != nil && c.l1iPol.Due() {
			c.cycles += c.l1iPol.Tick(c.cycles, s.writebackToL2)
		}
		return 0
	}
	res := c.l1i.Cache.AccessFull(addr, false)
	c.l1i.OnAccess(false)
	var stall uint64
	if !res.Hit {
		c.l1i.NoteMiss(addr &^ uint64(c.l1i.Cache.BlockBytes()-1))
		if res.Fill {
			c.l1i.OnFill()
		}
		if res.Writeback {
			s.writebackToL2(res.WritebackAddr)
		}
		stall = s.accessL2(c, addr, false)
	}
	if c.l1iPol != nil && c.l1iPol.Due() {
		c.cycles += c.l1iPol.Tick(c.cycles, s.writebackToL2)
	}
	return stall
}

// step executes one instruction on one core.
func (s *System) step(c *coreState, ins *trace.Instr) {
	c.cycles++
	c.instrs++
	c.cycles += s.accessL1I(c, ins.PC)
	if ins.HasMem {
		c.cycles += s.accessL1D(c, s.translate(c, ins.Addr), ins.Write)
	}
}

// Run simulates instrPerCore instructions on every core (after
// warmupPerCore), interleaving cores round-robin, and returns the
// aggregate result.
func Run(cfg Config, mode core.Mode, w trace.Workload, warmupPerCore, instrPerCore, seed uint64) (Result, error) {
	return RunContext(context.Background(), cfg, mode, w, warmupPerCore, instrPerCore, seed)
}

// ctxCheckMask throttles cancellation polling in the interleave loop:
// ctx.Err() is consulted once every 2048 round-robin sweeps.
const ctxCheckMask = 2048 - 1

// RunContext is Run with cancellation: the interleaved instruction loop
// polls ctx and abandons the simulation mid-flight with ctx's error when
// it is cancelled, so a cancelled campaign stops instead of running to
// completion.
func RunContext(ctx context.Context, cfg Config, mode core.Mode, w trace.Workload, warmupPerCore, instrPerCore, seed uint64) (Result, error) {
	parent := tracez.SpanFromContext(ctx)
	bsp := parent.Child("sim.build")
	sys, err := newSystem(cfg, mode, w, seed)
	bsp.SetInt("cores", int64(cfg.Cores))
	bsp.SetStr("mode", mode.String())
	bsp.End()
	if err != nil {
		return Result{}, err
	}
	return sys.run(ctx, warmupPerCore, instrPerCore)
}

// run drives a prepared multi-core system through warm-up and
// measurement.
//
// The production path shards trace generation across the cell: every
// core's generator — an independent, separately-seeded RNG stream —
// feeds its own trace.Pipe, so on multi-core hosts N producer
// goroutines fill reused block arenas concurrently while this single
// consumer goroutine interleaves the cores round-robin. Everything at
// or below the sharing boundary — private-L1 state, the coherence
// directory, the shared L2 — is touched only by the consumer, in a
// fixed sweep order, so the simulation is deterministic regardless of
// producer scheduling: each pipe delivers its core's stream in
// production order, and the interleaving of streams is fixed by the
// round-robin. TestShardedMatchesSerial pins this against the retained
// scalar interleave.
func (sys *System) run(ctx context.Context, warmupPerCore, instrPerCore uint64) (Result, error) {
	parent := tracez.SpanFromContext(ctx)
	cfg := sys.cfg
	mode := sys.mode
	sys.start()

	if !sys.scalarLoop {
		for _, c := range sys.cores {
			c.pipe = trace.StartPipe(trace.AsBlock(c.gen))
		}
		defer func() {
			for _, c := range sys.cores {
				c.pipe.Close()
			}
		}()
	}
	var ins trace.Instr
	interleave := func(n uint64) error {
		if sys.scalarLoop {
			for k := uint64(0); k < n; k++ {
				if k&ctxCheckMask == 0 && ctx.Err() != nil {
					return ctx.Err()
				}
				for _, c := range sys.cores {
					c.gen.Next(&ins)
					sys.step(c, &ins)
				}
			}
			return nil
		}
		for k := uint64(0); k < n; k++ {
			if k&ctxCheckMask == 0 && ctx.Err() != nil {
				return ctx.Err()
			}
			for _, c := range sys.cores {
				p := c.pipe
				if p.Pos == len(p.Cur) {
					p.Refill()
				}
				sys.step(c, &p.Cur[p.Pos])
				p.Pos++
			}
		}
		return nil
	}
	wsp := parent.Child("sim.warmup")
	wsp.SetUint("instructions_per_core", warmupPerCore)
	if err := interleave(warmupPerCore); err != nil {
		wsp.End()
		return Result{}, err
	}
	wsp.End()
	sys.arm()

	// Measurement marks.
	startCycles := make([]uint64, len(sys.cores))
	startL1 := make([][2]cache.Stats, len(sys.cores))
	startE := make([]float64, len(sys.cores))
	startCoreInv := make([]uint64, len(sys.cores))
	for i, c := range sys.cores {
		startCycles[i] = c.cycles
		startL1[i] = [2]cache.Stats{c.l1i.Cache.Stats(), c.l1d.Cache.Stats()}
		startE[i] = c.l1i.Energy(c.cycles).TotalJ + c.l1d.Energy(c.cycles).TotalJ
		startCoreInv[i] = c.invalidated
	}
	l2Start := sys.l2.Cache.Stats()
	l2StartE := sys.l2.Energy(sys.global).TotalJ
	l2StartTrans := sys.l2.Transitions()
	startInv := sys.cohInv
	globalStart := sys.global

	msp := parent.Child("sim.measure")
	msp.SetUint("instructions_per_core", instrPerCore)
	if err := interleave(instrPerCore); err != nil {
		msp.End()
		return Result{}, err
	}
	msp.End()

	esp := parent.Child("sim.energy")
	res := Result{Mode: mode}
	var maxCycles uint64
	for i, c := range sys.cores {
		cyc := c.cycles - startCycles[i]
		if cyc > maxCycles {
			maxCycles = cyc
		}
		e := c.l1i.Energy(c.cycles).TotalJ + c.l1d.Energy(c.cycles).TotalJ - startE[i]
		cr := CoreResult{
			CoreID:       i,
			Instructions: instrPerCore,
			Cycles:       cyc,
			IPC:          float64(instrPerCore) / float64(cyc),
			L1I:          c.l1i.Cache.Stats().Sub(startL1[i][0]),
			L1D:          c.l1d.Cache.Stats().Sub(startL1[i][1]),
			L1EnergyJ:    e,
			Invalidated:  c.invalidated - startCoreInv[i],
		}
		res.Cores = append(res.Cores, cr)
		res.TotalCacheEnergyJ += e
	}
	sys.bump(0) // ensure global >= all marks
	res.GlobalCycles = maxCycles
	res.Seconds = float64(maxCycles) / cfg.System.ClockHz
	// Integrate the shared L2 to the end of global time.
	endGlobal := globalStart + maxCycles
	if endGlobal < sys.global {
		endGlobal = sys.global
	}
	res.L2EnergyJ = sys.l2.Energy(endGlobal).TotalJ - l2StartE
	res.L2 = sys.l2.Cache.Stats().Sub(l2Start)
	res.L2Transitions = sys.l2.Transitions() - l2StartTrans
	res.TotalCacheEnergyJ += res.L2EnergyJ
	res.CoherenceInvalidations = sys.cohInv - startInv
	esp.SetFloat("total_j", res.TotalCacheEnergyJ)
	esp.End()
	return res, nil
}

// ResourceCounts implements obs.ResourceCounter for the runner's
// per-job attribution: shared-L2 voltage transitions plus writebacks
// from every private L1 and the L2.
func (r Result) ResourceCounts() (transitions int, writebacks uint64) {
	transitions = r.L2Transitions
	writebacks = r.L2.Writebacks
	for _, c := range r.Cores {
		writebacks += c.L1I.Writebacks + c.L1D.Writebacks
	}
	return transitions, writebacks
}
