package cpusim

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/tracez"
)

// TestPhaseSpans runs a traced DPCS simulation and checks the
// phase-granular span taxonomy: build, tracegen, warmup, measure and
// energy each appear once as children of the caller's span, and
// sampled dpcs.transition instants appear when the policy transitions.
func TestPhaseSpans(t *testing.T) {
	var col tracez.Collector
	tr := tracez.New(&col, tracez.Options{})
	ctx, root := tr.Start(tracez.ContextWith(context.Background(), tr), "job")

	res, err := RunContext(ctx, ConfigA(), core.DPCS, smallWorkload(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	root.End()

	counts := make(map[string]int)
	var rootID string
	for _, sp := range col.Snapshot() {
		if sp.Name == "job" {
			rootID = sp.ID
		}
		counts[sp.Name]++
	}
	for _, phase := range []string{"sim.build", "sim.tracegen", "sim.warmup", "sim.measure", "sim.energy"} {
		if counts[phase] != 1 {
			t.Errorf("%s spans: %d, want 1", phase, counts[phase])
		}
	}
	for _, sp := range col.Snapshot() {
		if sp.Name != "job" && sp.Parent != rootID {
			t.Errorf("%s span parented to %q, want job span %q", sp.Name, sp.Parent, rootID)
		}
		if sp.Name == "dpcs.transition" && sp.Kind != tracez.KindInstant {
			t.Errorf("dpcs.transition recorded as %q, want instant", sp.Kind)
		}
	}
	// DPCS at minimum performs the initial cycle-0 transitions, which
	// land before the measurement marks: instants may therefore exceed
	// the measured-window transition count, but never be absent.
	if trans, _ := res.ResourceCounts(); trans == 0 {
		t.Fatal("DPCS run reported zero measured transitions")
	}
	if counts["dpcs.transition"] == 0 {
		t.Error("no dpcs.transition instants recorded")
	}
}

// TestTransitionSampling checks TransitionEveryN thins the instant
// stream without touching the pass-through policy telemetry, and that
// tracing does not perturb the simulation itself.
func TestTransitionSampling(t *testing.T) {
	run := func(ctx context.Context, sink obs.PolicySink) Result {
		t.Helper()
		opts := fastOpts()
		opts.Sink = sink
		res, err := RunContext(ctx, ConfigA(), core.DPCS, smallWorkload(), opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	base := run(context.Background(), nil)

	var spans tracez.Collector
	var events obs.Collector
	tr := tracez.New(&spans, tracez.Options{TransitionEveryN: 2})
	ctx, root := tr.Start(tracez.ContextWith(context.Background(), tr), "job")
	traced := run(ctx, &events)
	root.End()

	if traced.TotalCacheEnergyJ != base.TotalCacheEnergyJ || traced.Cycles != base.Cycles {
		t.Fatalf("tracing changed the simulation: %+v vs %+v", traced, base)
	}
	var transEvents, instants int
	for _, ev := range events.Events {
		if ev.Decision == obs.DecisionTransition {
			transEvents++
		}
	}
	for _, sp := range spans.Snapshot() {
		if sp.Name == "dpcs.transition" {
			instants++
		}
	}
	if transEvents == 0 {
		t.Fatal("pass-through sink saw no transition events")
	}
	if want := transEvents / 2; instants != want {
		t.Errorf("every-2 sampling recorded %d instants for %d transitions, want %d", instants, transEvents, want)
	}
}

// TestResourceCounts checks the ResourceCounter totals agree with the
// per-cache results.
func TestResourceCounts(t *testing.T) {
	res, err := Run(ConfigA(), core.DPCS, smallWorkload(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	trans, wbs := res.ResourceCounts()
	if want := res.L1I.Transitions + res.L1D.Transitions + res.L2.Transitions; trans != want {
		t.Errorf("transitions %d, want %d", trans, want)
	}
	if want := res.L1I.Stats.Writebacks + res.L1D.Stats.Writebacks + res.L2.Stats.Writebacks; wbs != want {
		t.Errorf("writebacks %d, want %d", wbs, want)
	}
	if wbs == 0 {
		t.Error("write-heavy workload produced zero writebacks")
	}
}
