// Package cpusim is the architectural simulator substrate that stands in
// for the paper's gem5 setup (see DESIGN.md §2): a trace-driven core with
// unit base CPI, split L1 instruction/data caches, a unified L2 and a
// fixed-latency DRAM. Loads and fetches stall the core on misses
// (L1 miss adds the L2 hit latency; L2 miss adds the memory latency);
// writebacks consume bandwidth-free energy only. Each cache runs under a
// core.Controller (baseline / SPCS / DPCS), and DPCS policies tick per
// cache with their own intervals, exactly as Table 2 configures.
//
// # Concurrency contract
//
// A System and everything it owns (controllers, policies, fault maps,
// the RNG used during construction) is confined to one goroutine: build
// one System per concurrent simulation. The only package-level state is
// the statics memo table (see arena.go), which is immutable after first
// compute and safe for lock-free concurrent reads, so any number of
// Run/RunContext calls may proceed in parallel as long as each uses its
// own System and its own trace.Generator. This is the contract
// internal/runner relies on when it fans campaign jobs out across
// workers. An Arena is likewise confined to one goroutine, and a
// System built on it lives only until the next NewSystemArena call on
// that arena (DESIGN.md §13).
package cpusim

import (
	"context"
	"fmt"

	"repro/internal/cache"
	"repro/internal/cacti"
	"repro/internal/core"
	"repro/internal/faultmap"
	"repro/internal/faultmodel"
	"repro/internal/obs"
	"repro/internal/obs/tracez"
	"repro/internal/sram"
	"repro/internal/stats"
	"repro/internal/trace"
)

// CacheSpec describes one cache level of a system configuration.
type CacheSpec struct {
	Org       cacti.Org
	HitCycles uint64
	// DPCS policy knobs for this cache.
	Interval uint64
	// VoltagePenaltyCycles is the supply-settling part of the
	// transition penalty (the "+20"/"+40" of Table 2).
	VoltagePenaltyCycles uint64
}

// SystemConfig is one of the paper's Table 2 system configurations.
type SystemConfig struct {
	Name     string
	ClockHz  float64
	L1I, L1D CacheSpec
	L2       CacheSpec
	// MemCycles is the DRAM access latency in cycles.
	MemCycles uint64
	// MLPOverlap models out-of-order latency hiding: the fraction of
	// each miss's stall the core overlaps with useful work (0 = fully
	// blocking in-order, the default; the paper's detailed OoO Alpha
	// would sit around 0.3-0.6 depending on workload ILP). Only demand
	// stalls shrink; energy-relevant event counts are unchanged.
	MLPOverlap float64
	// SuperInterval, LowThreshold, HighThreshold parameterise DPCS.
	SuperInterval               int
	LowThreshold, HighThreshold float64
	// Ablate disables DPCS damping refinements for ablation studies.
	Ablate core.AblationFlags
}

// ConfigA returns the paper's Config A: 2 GHz, 64 KB 4-way split L1
// (2-cycle), 2 MB 8-way L2 (4-cycle).
func ConfigA() SystemConfig {
	return SystemConfig{
		Name:    "A",
		ClockHz: 2e9,
		L1I: CacheSpec{
			Org:       cacti.Org{Name: "L1I-A", SizeBytes: 64 << 10, Assoc: 4, BlockBytes: 64, AddrBits: 40},
			HitCycles: 2, Interval: 100_000, VoltagePenaltyCycles: 20,
		},
		L1D: CacheSpec{
			Org:       cacti.Org{Name: "L1D-A", SizeBytes: 64 << 10, Assoc: 4, BlockBytes: 64, AddrBits: 40},
			HitCycles: 2, Interval: 100_000, VoltagePenaltyCycles: 20,
		},
		L2: CacheSpec{
			Org:       cacti.Org{Name: "L2-A", SizeBytes: 2 << 20, Assoc: 8, BlockBytes: 64, AddrBits: 40, SerialTagData: true},
			HitCycles: 4, Interval: 10_000, VoltagePenaltyCycles: 20,
		},
		MemCycles:     200,
		SuperInterval: 10,
		LowThreshold:  0.02,
		HighThreshold: 0.03,
	}
}

// ConfigB returns the paper's Config B: 3 GHz, 256 KB 8-way split L1
// (3-cycle), 8 MB 16-way L2 (8-cycle) — the over-provisioned system used
// to probe DPCS's advantage on larger caches.
func ConfigB() SystemConfig {
	return SystemConfig{
		Name:    "B",
		ClockHz: 3e9,
		L1I: CacheSpec{
			Org:       cacti.Org{Name: "L1I-B", SizeBytes: 256 << 10, Assoc: 8, BlockBytes: 64, AddrBits: 40},
			HitCycles: 3, Interval: 100_000, VoltagePenaltyCycles: 40,
		},
		L1D: CacheSpec{
			Org:       cacti.Org{Name: "L1D-B", SizeBytes: 256 << 10, Assoc: 8, BlockBytes: 64, AddrBits: 40},
			HitCycles: 3, Interval: 100_000, VoltagePenaltyCycles: 40,
		},
		L2: CacheSpec{
			Org:       cacti.Org{Name: "L2-B", SizeBytes: 8 << 20, Assoc: 16, BlockBytes: 64, AddrBits: 40, SerialTagData: true},
			HitCycles: 8, Interval: 10_000, VoltagePenaltyCycles: 40,
		},
		MemCycles:     300,
		SuperInterval: 10,
		LowThreshold:  0.03,
		HighThreshold: 0.045,
	}
}

// RunOptions control one simulation.
type RunOptions struct {
	// WarmupInstr instructions run before measurement starts (the
	// paper's fast-forward; scaled down like everything else).
	WarmupInstr uint64
	// SimInstr instructions are measured.
	SimInstr uint64
	// Seed drives fault-map placement and the workload generator.
	Seed uint64
	// Sink, when non-nil, receives typed policy telemetry from every
	// cache level: one event per DPCS interval decision plus one
	// DecisionTransition event per controller voltage transition
	// (including the initial cycle-0 transitions to the SPCS voltage).
	Sink obs.PolicySink
	// Arena, when non-nil, supplies the reusable per-worker simulation
	// state (see Arena); the run's output is byte-identical with or
	// without it.
	Arena *Arena `json:"-"`
}

// DefaultRunOptions returns the scaled-down defaults used by the test
// suite; the cmd/pcs-sim harness uses larger values.
func DefaultRunOptions() RunOptions {
	return RunOptions{WarmupInstr: 1_000_000, SimInstr: 2_000_000, Seed: 1}
}

// CacheResult reports one cache's behaviour over the measured window.
type CacheResult struct {
	Name        string
	Stats       cache.Stats
	Energy      core.EnergyReport
	AvgPowerW   float64
	Transitions int
	// LevelVolts and TimeAtLevelCycles describe where the controller
	// spent its time (index 0 = lowest level).
	LevelVolts        []float64
	TimeAtLevelCycles []uint64
}

// Result is the outcome of one simulation run.
type Result struct {
	Workload string
	Config   string
	Mode     core.Mode

	Instructions uint64
	Cycles       uint64
	Seconds      float64
	IPC          float64

	L1I, L1D, L2 CacheResult

	// TotalCacheEnergyJ sums all three caches' energies.
	TotalCacheEnergyJ float64
}

// level wires one cache's simulator state together.
type level struct {
	spec CacheSpec
	ctrl *core.Controller
	dpcs *core.DPCSPolicy
	plan core.LevelPlan
}

// System is a configured simulator instance.
type System struct {
	cfg    SystemConfig
	mode   core.Mode
	ber    sram.BERModel
	l1i    *level
	l1d    *level
	l2     *level
	cycles uint64
	// arena, when non-nil, owns this system's caches, fault maps and
	// trace blocks; the system is valid until the arena's next build.
	arena *Arena
	// seed is the construction seed, kept so the arena can key its
	// pristine fault-map snapshots (see Arena.faultMapFor).
	seed uint64
	// scalarLoop selects the retained per-instruction reference loop
	// instead of the block pipeline; the differential tests set it.
	scalarLoop bool
}

// NewSystem builds the three cache levels for the given mode, deriving
// per-cache voltage plans from the BER model and populating fault maps
// by seeded Monte Carlo.
func NewSystem(cfg SystemConfig, mode core.Mode, seed uint64) (*System, error) {
	return NewSystemArena(nil, cfg, mode, seed)
}

// NewSystemArena is NewSystem drawing all reusable structures from the
// given arena (nil behaves exactly like NewSystem). The constructed
// system is byte-for-byte equivalent either way — same RNG draw
// sequence, same fault maps, same cold-cache contents — but a warm
// arena supplies the memory without allocating. The returned System is
// valid only until the next NewSystemArena call on the same arena.
func NewSystemArena(a *Arena, cfg SystemConfig, mode core.Mode, seed uint64) (*System, error) {
	ber := sram.NewWangCalhounBER()
	sys := &System{cfg: cfg, mode: mode, ber: ber, arena: a, seed: seed}
	var root *stats.RNG
	if a != nil {
		a.rngRoot.Reseed(seed ^ 0x9C5_DEAD)
		root = &a.rngRoot
	} else {
		root = stats.NewRNG(seed ^ 0x9C5_DEAD)
	}
	// split reproduces root.Split() without allocating on the arena
	// path; the single rngLevel is safe because each buildLevel call
	// finishes with its RNG before the next begins.
	split := func() *stats.RNG {
		if a != nil {
			a.rngLevel.Reseed(root.Uint64())
			return &a.rngLevel
		}
		return root.Split()
	}
	var err error
	if sys.l1i, err = sys.buildLevel(cfg.L1I, split()); err != nil {
		return nil, err
	}
	if sys.l1d, err = sys.buildLevel(cfg.L1D, split()); err != nil {
		return nil, err
	}
	if sys.l2, err = sys.buildLevel(cfg.L2, split()); err != nil {
		return nil, err
	}
	return sys, nil
}

func (s *System) buildLevel(spec CacheSpec, rng *stats.RNG) (*level, error) {
	base, err := baseStaticsFor(spec.Org)
	if err != nil {
		return nil, err
	}
	ccfg := cache.Config{
		Name:       spec.Org.Name,
		SizeBytes:  spec.Org.SizeBytes,
		Assoc:      spec.Org.Assoc,
		BlockBytes: spec.Org.BlockBytes,
	}
	var c *cache.Cache
	if s.arena != nil {
		c = s.arena.cacheFor(ccfg)
	} else {
		c = cache.MustNew(ccfg)
	}

	lv := &level{spec: spec}
	if s.mode == core.Baseline {
		ctrl, err := core.NewController(core.Baseline, c, nil, base.nomLevels, base.cm, s.cfg.ClockHz, 0)
		if err != nil {
			return nil, err
		}
		lv.ctrl = ctrl
		return lv, nil
	}

	geom := faultmodel.Geometry{Sets: c.Sets(), Ways: c.Ways(), BlockBits: spec.Org.BlockBits()}
	pcs, err := pcsStaticsFor(spec.Org, geom, s.ber)
	if err != nil {
		return nil, err
	}
	lv.plan = pcs.plan
	var m *faultmap.Map
	if s.arena != nil {
		m = s.arena.faultMapFor(ccfg, pcs.plan, c.NumBlocks(), s.seed, rng)
	} else {
		m = core.PopulateMapMonteCarlo(rng, pcs.plan, c.NumBlocks())
	}
	if bad := core.EnsureSetsUsable(m, c.Sets(), c.Ways(), 1); len(bad) > 0 {
		core.RepairSets(m, c.Ways(), bad)
	}
	ctrl, err := core.NewController(s.mode, c, m, pcs.plan.Levels, pcs.pcsCM, s.cfg.ClockHz, spec.VoltagePenaltyCycles)
	if err != nil {
		return nil, err
	}
	lv.ctrl = ctrl

	if s.mode == core.DPCS {
		missPenalty := float64(s.cfg.L2.HitCycles)
		if spec.Org.SerialTagData { // this is the L2: misses go to memory
			missPenalty = float64(s.cfg.MemCycles)
		}
		pol, err := core.NewDPCS(core.DPCSConfig{
			Interval:          spec.Interval,
			SuperInterval:     s.cfg.SuperInterval,
			LowThreshold:      s.cfg.LowThreshold,
			HighThreshold:     s.cfg.HighThreshold,
			HitCycles:         float64(spec.HitCycles),
			MissPenaltyCycles: missPenalty,
			SPCSLevel:         pcs.plan.SPCSLevel,
			Ablate:            s.cfg.Ablate,
		}, ctrl)
		if err != nil {
			return nil, err
		}
		lv.dpcs = pol
	}
	return lv, nil
}

// SetSink attaches a telemetry sink to every cache level's controller
// and DPCS policy. Call it before running; the run records the initial
// SPCS/DPCS transitions too. A nil sink detaches telemetry.
func (s *System) SetSink(sink obs.PolicySink) {
	for _, lv := range []*level{s.l1i, s.l1d, s.l2} {
		lv.ctrl.SetSink(sink)
		if lv.dpcs != nil {
			lv.dpcs.SetSink(sink)
		}
	}
}

// start applies the initial policy transition (SPCS and DPCS both begin
// at the SPCS voltage; baseline stays at nominal).
func (s *System) start() {
	sinkL2 := s.writebackToL2
	switch s.mode {
	case core.SPCS:
		core.ApplySPCS(s.l1i.ctrl, s.l1i.plan.SPCSLevel, sinkL2)
		core.ApplySPCS(s.l1d.ctrl, s.l1d.plan.SPCSLevel, sinkL2)
		core.ApplySPCS(s.l2.ctrl, s.l2.plan.SPCSLevel, s.writebackToMem)
	case core.DPCS:
		s.l1i.dpcs.Start(sinkL2)
		s.l1d.dpcs.Start(sinkL2)
		s.l2.dpcs.Start(s.writebackToMem)
	}
}

// armPolicies activates the DPCS decision machinery after warm-up.
func (s *System) armPolicies() {
	for _, lv := range []*level{s.l1i, s.l1d, s.l2} {
		if lv.dpcs != nil {
			lv.dpcs.Arm(s.cycles)
		}
	}
}

// writebackToL2 pushes an L1 writeback into the L2 (energy, no stall).
func (s *System) writebackToL2(addr uint64) {
	res := s.l2.ctrl.Cache.Access(addr, true)
	s.l2.ctrl.OnAccess(true)
	if res.Fill && !res.Hit {
		s.l2.ctrl.OnFill()
	}
	if res.Writeback {
		s.writebackToMem(res.WritebackAddr)
	}
}

// writebackToMem absorbs an L2 writeback (DRAM energy is outside the
// paper's cache-energy accounting).
func (s *System) writebackToMem(addr uint64) {}

// accessL2 performs a demand L2 access, returning the added stall.
func (s *System) accessL2(addr uint64, write bool) uint64 {
	stall := s.cfg.L2.HitCycles
	res := s.l2.ctrl.Cache.Access(addr, write)
	s.l2.ctrl.OnAccess(write)
	if !res.Hit {
		s.l2.ctrl.NoteMiss(blockAlign(addr, s.l2.ctrl.Cache.BlockBytes()))
		stall += s.cfg.MemCycles
		if res.Fill {
			s.l2.ctrl.OnFill()
		}
		if res.Writeback {
			s.writebackToMem(res.WritebackAddr)
		}
	}
	if s.l2.dpcs != nil && s.l2.dpcs.Due() {
		s.cycles += s.l2.dpcs.Tick(s.cycles, s.writebackToMem)
	}
	return s.overlap(stall)
}

// overlap shrinks a demand stall by the configured MLP overlap factor.
func (s *System) overlap(stall uint64) uint64 {
	if s.cfg.MLPOverlap <= 0 {
		return stall
	}
	f := 1 - s.cfg.MLPOverlap
	if f < 0 {
		f = 0
	}
	return uint64(float64(stall) * f)
}

// accessL1 performs a demand access on an L1, recursing into L2 on miss,
// and returns the stall cycles beyond the pipelined hit. step handles
// the memoized repeat-block fast path before calling here, so this is
// the cold half of the split.
func (s *System) accessL1(lv *level, addr uint64, write bool) uint64 {
	res := lv.ctrl.Cache.AccessFull(addr, write)
	lv.ctrl.OnAccess(write)
	var stall uint64
	if !res.Hit {
		lv.ctrl.NoteMiss(blockAlign(addr, lv.ctrl.Cache.BlockBytes()))
		if res.Fill {
			lv.ctrl.OnFill()
		}
		if res.Writeback {
			s.writebackToL2(res.WritebackAddr)
		}
		stall = s.accessL2(addr, write)
	}
	// Interval fast-forward: the policy is quiescent between sampling
	// boundaries (energy and time-at-level integrate lazily in the
	// controller), so the Tick call — and its interval-stats struct
	// copy — is skipped until the access counter crosses the boundary.
	if lv.dpcs != nil && lv.dpcs.Due() {
		s.cycles += lv.dpcs.Tick(s.cycles, s.writebackToL2)
	}
	return stall
}

// blockAlign rounds addr down to its cache-block base address.
func blockAlign(addr uint64, blockBytes int) uint64 {
	return addr &^ (uint64(blockBytes) - 1)
}

// step executes one instruction. The memoized repeat-block L1 hit —
// the dominant outcome for sequential fetch runs and hot data blocks —
// is fused inline here (FastHit and Due both inline), so the common
// case runs without entering accessL1 at all; everything else takes
// the cold accessL1 path. FastHit-then-AccessFull is observationally
// identical to Access, so both halves of the split preserve the exact
// per-access effects of the reference implementation.
func (s *System) step(ins *trace.Instr) {
	s.cycles++ // base CPI of 1
	if s.l1i.ctrl.Cache.FastHit(ins.PC, false) {
		s.l1i.ctrl.OnAccess(false)
		if s.l1i.dpcs != nil && s.l1i.dpcs.Due() {
			s.cycles += s.l1i.dpcs.Tick(s.cycles, s.writebackToL2)
		}
	} else {
		s.cycles += s.accessL1(s.l1i, ins.PC, false)
	}
	if ins.HasMem {
		if s.l1d.ctrl.Cache.FastHit(ins.Addr, ins.Write) {
			s.l1d.ctrl.OnAccess(ins.Write)
			if s.l1d.dpcs != nil && s.l1d.dpcs.Due() {
				s.cycles += s.l1d.dpcs.Tick(s.cycles, s.writebackToL2)
			}
		} else {
			s.cycles += s.accessL1(s.l1d, ins.Addr, ins.Write)
		}
	}
}

// Run simulates the workload under the options and returns the measured
// window's result.
func Run(cfg SystemConfig, mode core.Mode, w trace.Workload, opts RunOptions) (Result, error) {
	return RunContext(context.Background(), cfg, mode, w, opts)
}

// RunContext is Run with cancellation: the instruction loops poll ctx
// and abandon the simulation mid-flight with ctx's error when it is
// cancelled, so a cancelled campaign does not run to completion.
func RunContext(ctx context.Context, cfg SystemConfig, mode core.Mode, w trace.Workload, opts RunOptions) (Result, error) {
	parent := tracez.SpanFromContext(ctx)
	bsp := parent.Child("sim.build")
	sys, err := NewSystemArena(opts.Arena, cfg, mode, opts.Seed)
	bsp.SetStr("config", cfg.Name)
	bsp.SetStr("mode", mode.String())
	bsp.End()
	if err != nil {
		return Result{}, err
	}
	gsp := parent.Child("sim.tracegen")
	gen, err := trace.New(w, opts.Seed)
	gsp.SetStr("workload", w.Name)
	gsp.End()
	if err != nil {
		return Result{}, err
	}
	return sys.run(ctx, gen, opts)
}

// RunGenerator is Run for a caller-supplied instruction source (e.g. a
// replayed trace): the generator's Name labels the result.
func RunGenerator(cfg SystemConfig, mode core.Mode, gen trace.Generator, opts RunOptions) (Result, error) {
	return RunGeneratorContext(context.Background(), cfg, mode, gen, opts)
}

// RunGeneratorContext is RunGenerator with cancellation (see RunContext).
func RunGeneratorContext(ctx context.Context, cfg SystemConfig, mode core.Mode, gen trace.Generator, opts RunOptions) (Result, error) {
	bsp := tracez.SpanFromContext(ctx).Child("sim.build")
	sys, err := NewSystemArena(opts.Arena, cfg, mode, opts.Seed)
	bsp.SetStr("config", cfg.Name)
	bsp.SetStr("mode", mode.String())
	bsp.End()
	if err != nil {
		return Result{}, err
	}
	return sys.run(ctx, gen, opts)
}

// ctxCheckMask throttles cancellation polling in the retained scalar
// instruction loop: ctx.Err() is checked once every 8192 instructions,
// cheap enough to be invisible and fine-grained enough to stop a run
// within microseconds. The block loop polls once per block instead.
const ctxCheckMask = 8192 - 1

// simulate runs n instructions off a trace.Pipe: the pipe fills blocks
// (ahead, on multi-core hosts) while this consumer steps through them,
// with cancellation polled once per block. A cancel arriving mid-block
// is observed at the next block boundary, so simulation stops within
// one block (trace.BlockSize instructions) of the cancel; a threaded
// producer may have run at most the two arena blocks ahead of the stop
// point.
func (s *System) simulate(ctx context.Context, p *trace.Pipe, n uint64) error {
	for n > 0 {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if p.Pos == len(p.Cur) {
			p.Refill()
		}
		blk := p.Cur[p.Pos:]
		if n < uint64(len(blk)) {
			blk = blk[:n]
		}
		for i := range blk {
			s.step(&blk[i])
		}
		p.Pos += len(blk)
		n -= uint64(len(blk))
	}
	return nil
}

// simulateScalar is the retained reference inner loop — one generator
// call and one step per instruction, exactly the pre-block pipeline.
// The block loop above must be observationally identical instruction
// for instruction; TestBlockLoopMatchesScalar drives both over the
// same workloads and asserts equal Results.
func (s *System) simulateScalar(ctx context.Context, gen trace.Generator, n uint64) error {
	var ins trace.Instr
	for i := uint64(0); i < n; i++ {
		if i&ctxCheckMask == 0 && ctx.Err() != nil {
			return ctx.Err()
		}
		gen.Next(&ins)
		s.step(&ins)
	}
	return nil
}

// transitionTracer wraps a PolicySink, recording every N-th controller
// voltage transition as a dpcs.transition instant span under parent.
// Interval-decision telemetry passes through untouched: spans stay
// phase-granular, never per-event (transitions are rare; sampling is a
// belt-and-braces bound for pathological thrashing configurations).
type transitionTracer struct {
	inner  obs.PolicySink
	parent *tracez.Span
	every  uint64
	n      uint64
}

// Record implements obs.PolicySink.
func (t *transitionTracer) Record(ev obs.PolicyEvent) {
	if t.inner != nil {
		t.inner.Record(ev)
	}
	if ev.Decision != obs.DecisionTransition {
		return
	}
	t.n++
	if t.n%t.every != 0 {
		return
	}
	sp := t.parent.Child("dpcs.transition")
	sp.SetStr("cache", ev.CacheName)
	sp.SetInt("from", int64(ev.FromLevel))
	sp.SetInt("to", int64(ev.ToLevel))
	sp.SetInt("writebacks", int64(ev.Writebacks))
	sp.SetUint("cycle", ev.Cycle)
	sp.EndInstant()
}

// run drives a prepared system through warm-up and measurement.
func (sys *System) run(ctx context.Context, gen trace.Generator, opts RunOptions) (Result, error) {
	cfg := sys.cfg
	mode := sys.mode
	parent := tracez.SpanFromContext(ctx)
	sink := opts.Sink
	if tr := tracez.FromContext(ctx); tr != nil && parent != nil {
		sink = &transitionTracer{inner: opts.Sink, parent: parent, every: uint64(tr.TransitionEveryN())}
	}
	if sink != nil {
		sys.SetSink(sink)
	}
	sys.start()

	// The block pipeline is the production path; scalarLoop selects the
	// retained reference loop for differential testing.
	var p *trace.Pipe
	if !sys.scalarLoop {
		var pa *trace.PipeArena
		if sys.arena != nil {
			pa = &sys.arena.pipes
		}
		p = trace.StartPipeArena(trace.AsBlock(gen), pa)
		defer p.Close()
	}
	window := func(n uint64) error {
		if sys.scalarLoop {
			return sys.simulateScalar(ctx, gen, n)
		}
		return sys.simulate(ctx, p, n)
	}

	wsp := parent.Child("sim.warmup")
	wsp.SetUint("instructions", opts.WarmupInstr)
	if err := window(opts.WarmupInstr); err != nil {
		wsp.End()
		return Result{}, err
	}
	wsp.End()
	sys.armPolicies()
	// Measurement marks.
	startCycles := sys.cycles
	startE := [3]core.EnergyReport{
		sys.l1i.ctrl.Energy(sys.cycles),
		sys.l1d.ctrl.Energy(sys.cycles),
		sys.l2.ctrl.Energy(sys.cycles),
	}
	startStats := [3]cache.Stats{
		sys.l1i.ctrl.Cache.Stats(),
		sys.l1d.ctrl.Cache.Stats(),
		sys.l2.ctrl.Cache.Stats(),
	}
	startTrans := [3]int{
		sys.l1i.ctrl.Transitions(),
		sys.l1d.ctrl.Transitions(),
		sys.l2.ctrl.Transitions(),
	}

	msp := parent.Child("sim.measure")
	msp.SetUint("instructions", opts.SimInstr)
	if err := window(opts.SimInstr); err != nil {
		msp.End()
		return Result{}, err
	}
	msp.End()

	esp := parent.Child("sim.energy")
	cycles := sys.cycles - startCycles
	res := Result{
		Workload:     gen.Name(),
		Config:       cfg.Name,
		Mode:         mode,
		Instructions: opts.SimInstr,
		Cycles:       cycles,
		Seconds:      float64(cycles) / cfg.ClockHz,
		IPC:          float64(opts.SimInstr) / float64(cycles),
	}
	finish := func(lv *level, e0 core.EnergyReport, s0 cache.Stats, t0 int) CacheResult {
		e1 := lv.ctrl.Energy(sys.cycles)
		de := core.EnergyReport{
			StaticJ:     e1.StaticJ - e0.StaticJ,
			DynamicJ:    e1.DynamicJ - e0.DynamicJ,
			TransitionJ: e1.TransitionJ - e0.TransitionJ,
			TotalJ:      e1.TotalJ - e0.TotalJ,
		}
		cr := CacheResult{
			Name:              lv.ctrl.Cache.Name(),
			Stats:             lv.ctrl.Cache.Stats().Sub(s0),
			Energy:            de,
			Transitions:       lv.ctrl.Transitions() - t0,
			LevelVolts:        lv.ctrl.Levels.All(),
			TimeAtLevelCycles: lv.ctrl.TimeAtLevelCycles(),
		}
		if res.Seconds > 0 {
			cr.AvgPowerW = de.TotalJ / res.Seconds
		}
		return cr
	}
	res.L1I = finish(sys.l1i, startE[0], startStats[0], startTrans[0])
	res.L1D = finish(sys.l1d, startE[1], startStats[1], startTrans[1])
	res.L2 = finish(sys.l2, startE[2], startStats[2], startTrans[2])
	res.TotalCacheEnergyJ = res.L1I.Energy.TotalJ + res.L1D.Energy.TotalJ + res.L2.Energy.TotalJ
	esp.SetFloat("total_j", res.TotalCacheEnergyJ)
	esp.End()
	return res, nil
}

// ResourceCounts implements obs.ResourceCounter: the runner attributes
// the run's voltage transitions and dirty writebacks to its job in the
// timeline's resources block.
func (r Result) ResourceCounts() (transitions int, writebacks uint64) {
	transitions = r.L1I.Transitions + r.L1D.Transitions + r.L2.Transitions
	writebacks = r.L1I.Stats.Writebacks + r.L1D.Stats.Writebacks + r.L2.Stats.Writebacks
	return transitions, writebacks
}

// String gives a compact one-line summary of a result.
func (r Result) String() string {
	return fmt.Sprintf("%s/%s/%s: IPC=%.3f cycles=%d E=%.3g mJ (L1I %.3g, L1D %.3g, L2 %.3g)",
		r.Config, r.Workload, r.Mode, r.IPC, r.Cycles,
		r.TotalCacheEnergyJ*1e3, r.L1I.Energy.TotalJ*1e3, r.L1D.Energy.TotalJ*1e3, r.L2.Energy.TotalJ*1e3)
}

// Accessors expose the built controllers and policies so higher-level
// substrates (internal/multicore) can compose systems from cpusim's
// per-level construction. Policies are nil outside DPCS mode.

// L1IController returns the instruction-L1 controller.
func (s *System) L1IController() *core.Controller { return s.l1i.ctrl }

// L1DController returns the data-L1 controller.
func (s *System) L1DController() *core.Controller { return s.l1d.ctrl }

// L2Controller returns the L2 controller.
func (s *System) L2Controller() *core.Controller { return s.l2.ctrl }

// L1IPolicy returns the instruction-L1 DPCS policy (nil unless DPCS).
func (s *System) L1IPolicy() *core.DPCSPolicy { return s.l1i.dpcs }

// L1DPolicy returns the data-L1 DPCS policy (nil unless DPCS).
func (s *System) L1DPolicy() *core.DPCSPolicy { return s.l1d.dpcs }

// L2Policy returns the L2 DPCS policy (nil unless DPCS).
func (s *System) L2Policy() *core.DPCSPolicy { return s.l2.dpcs }

// SPCSLevels returns each cache's SPCS voltage level (the VDD2 index),
// or the top level in Baseline mode.
func (s *System) SPCSLevels() (l1i, l1d, l2 int) {
	pick := func(lv *level) int {
		if s.mode == core.Baseline {
			return lv.ctrl.Levels.N()
		}
		return lv.plan.SPCSLevel
	}
	return pick(s.l1i), pick(s.l1d), pick(s.l2)
}

// DebugResult augments Result with policy internals for diagnostics.
type DebugResult struct {
	Result   Result
	Policies [3]*core.DPCSPolicy // L1I, L1D, L2 (nil unless DPCS)
}

// RunDebug is Run, also returning the DPCS policy objects for inspection.
func RunDebug(cfg SystemConfig, mode core.Mode, w trace.Workload, opts RunOptions) (DebugResult, error) {
	sys, err := NewSystem(cfg, mode, opts.Seed)
	if err != nil {
		return DebugResult{}, err
	}
	gen, err := trace.New(w, opts.Seed)
	if err != nil {
		return DebugResult{}, err
	}
	res, err := sys.run(context.Background(), gen, opts)
	if err != nil {
		return DebugResult{}, err
	}
	return DebugResult{Result: res, Policies: [3]*core.DPCSPolicy{sys.l1i.dpcs, sys.l1d.dpcs, sys.l2.dpcs}}, nil
}
