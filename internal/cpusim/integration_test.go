package cpusim

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/trace"
)

// TestReplayEquivalence records a workload to the binary trace format,
// replays it through the simulator, and requires cycle- and
// energy-identical results to driving the generator directly — the
// cross-module contract between trace recording and simulation.
func TestReplayEquivalence(t *testing.T) {
	w := smallWorkload()
	const total = 300_000
	opts := RunOptions{WarmupInstr: 50_000, SimInstr: total - 50_000, Seed: 1}

	direct, err := Run(ConfigA(), core.SPCS, w, opts)
	if err != nil {
		t.Fatal(err)
	}

	gen := trace.MustNew(w, opts.Seed)
	var buf bytes.Buffer
	if err := trace.Record(gen, total, &buf); err != nil {
		t.Fatal(err)
	}
	r, err := trace.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	rep := trace.NewReplay(w.Name, r, nil)
	replayed, err := RunGenerator(ConfigA(), core.SPCS, rep, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Err() != nil {
		t.Fatal(rep.Err())
	}

	if direct.Cycles != replayed.Cycles {
		t.Errorf("cycles differ: %d vs %d", direct.Cycles, replayed.Cycles)
	}
	if direct.TotalCacheEnergyJ != replayed.TotalCacheEnergyJ {
		t.Errorf("energy differs: %v vs %v",
			direct.TotalCacheEnergyJ, replayed.TotalCacheEnergyJ)
	}
	if direct.L1D.Stats != replayed.L1D.Stats || direct.L2.Stats != replayed.L2.Stats {
		t.Error("cache statistics differ between direct and replayed runs")
	}
}

// TestEnergyConservation checks the energy ledger's internal consistency
// over a DPCS run: component sums match totals, and static energy equals
// power-weighted time within the integration's resolution.
func TestEnergyConservation(t *testing.T) {
	r, err := Run(ConfigA(), core.DPCS, smallWorkload(),
		RunOptions{WarmupInstr: 100_000, SimInstr: 500_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, cr := range []CacheResult{r.L1I, r.L1D, r.L2} {
		sum := cr.Energy.StaticJ + cr.Energy.DynamicJ + cr.Energy.TransitionJ
		if diff := sum - cr.Energy.TotalJ; diff > 1e-15 || diff < -1e-15 {
			t.Errorf("%s: component sum %v != total %v", cr.Name, sum, cr.Energy.TotalJ)
		}
		var timeSum uint64
		for _, c := range cr.TimeAtLevelCycles {
			timeSum += c
		}
		if timeSum == 0 {
			t.Errorf("%s: no time integrated", cr.Name)
		}
	}
	total := r.L1I.Energy.TotalJ + r.L1D.Energy.TotalJ + r.L2.Energy.TotalJ
	if diff := total - r.TotalCacheEnergyJ; diff > 1e-15 || diff < -1e-15 {
		t.Errorf("cache sum %v != reported total %v", total, r.TotalCacheEnergyJ)
	}
}

// TestModesShareFaultMaps verifies SPCS and DPCS of the same seed see
// identical fault geography: their caches gate the same block count at
// the same level.
func TestModesShareFaultMaps(t *testing.T) {
	s1, err := NewSystem(ConfigA(), core.SPCS, 7)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewSystem(ConfigA(), core.DPCS, 7)
	if err != nil {
		t.Fatal(err)
	}
	a, b := s1.L2Controller(), s2.L2Controller()
	for blk := 0; blk < a.Cache.NumBlocks(); blk += 97 {
		if a.Map.FM(blk) != b.Map.FM(blk) {
			t.Fatalf("block %d FM differs across modes", blk)
		}
	}
}

// TestCacheHierarchyInclusionOfTraffic sanity-checks traffic flow: L2
// demand accesses can never exceed L1 misses plus L1 writebacks.
func TestCacheHierarchyInclusionOfTraffic(t *testing.T) {
	r, err := Run(ConfigA(), core.Baseline, smallWorkload(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	upper := r.L1I.Stats.Misses + r.L1D.Stats.Misses +
		r.L1I.Stats.Writebacks + r.L1D.Stats.Writebacks
	if r.L2.Stats.Accesses > upper {
		t.Errorf("L2 accesses %d exceed L1 miss+wb traffic %d",
			r.L2.Stats.Accesses, upper)
	}
	// And cycles account for at least the misses' latency.
	minCycles := r.Instructions + r.L2.Stats.Misses*uint64(ConfigA().MemCycles)
	if r.Cycles < minCycles {
		t.Errorf("cycles %d below floor %d", r.Cycles, minCycles)
	}
}

// TestDPCSNeverExceedsSPCSVoltage asserts the paper's rule that DPCS
// treats the SPCS level as its ceiling.
func TestDPCSNeverExceedsSPCSVoltage(t *testing.T) {
	d, err := RunDebug(ConfigA(), core.DPCS, smallWorkload(),
		RunOptions{WarmupInstr: 100_000, SimInstr: 400_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r := d.Result
	for _, cr := range []CacheResult{r.L1I, r.L1D, r.L2} {
		top := len(cr.LevelVolts) - 1 // index of VDD3
		if cr.TimeAtLevelCycles[top] != 0 {
			t.Errorf("%s spent %d cycles at nominal VDD under DPCS",
				cr.Name, cr.TimeAtLevelCycles[top])
		}
	}
}

// TestMLPOverlapShrinksStalls checks the OoO-overlap knob: a core that
// hides half its miss latency runs faster, while cache energy events
// (accesses, misses) stay identical.
func TestMLPOverlapShrinksStalls(t *testing.T) {
	w := smallWorkload()
	blocking, err := Run(ConfigA(), core.Baseline, w, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	cfg := ConfigA()
	cfg.MLPOverlap = 0.5
	ooo, err := Run(cfg, core.Baseline, w, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if ooo.Cycles >= blocking.Cycles {
		t.Fatalf("overlapped run not faster: %d vs %d", ooo.Cycles, blocking.Cycles)
	}
	if ooo.L1D.Stats.Misses != blocking.L1D.Stats.Misses ||
		ooo.L2.Stats.Accesses != blocking.L2.Stats.Accesses {
		t.Error("overlap changed cache event counts")
	}
	// Static energy shrinks with runtime; dynamic energy is identical.
	if ooo.L2.Energy.DynamicJ != blocking.L2.Energy.DynamicJ {
		t.Error("overlap changed dynamic energy")
	}
	if ooo.L2.Energy.StaticJ >= blocking.L2.Energy.StaticJ {
		t.Error("shorter run did not shrink static energy")
	}
}

// TestAccessorsAndTelemetry covers the composition surface multicore
// builds on: controller/policy accessors, SPCS levels, and the typed
// telemetry sink.
func TestAccessorsAndTelemetry(t *testing.T) {
	s, err := NewSystem(ConfigA(), core.DPCS, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.L1IController() == nil || s.L1DController() == nil || s.L2Controller() == nil {
		t.Fatal("nil controller accessor")
	}
	if s.L1IPolicy() == nil || s.L1DPolicy() == nil || s.L2Policy() == nil {
		t.Fatal("nil policy accessor in DPCS mode")
	}
	i1, d1, l2 := s.SPCSLevels()
	for _, lv := range []int{i1, d1, l2} {
		if lv < 1 || lv > 3 {
			t.Fatalf("SPCS level %d out of range", lv)
		}
	}
	base, err := NewSystem(ConfigA(), core.Baseline, 1)
	if err != nil {
		t.Fatal(err)
	}
	bi, bd, bl := base.SPCSLevels()
	if bi != 1 || bd != 1 || bl != 1 {
		t.Fatalf("baseline SPCS levels %d/%d/%d, want top level (1 of 1)", bi, bd, bl)
	}

	// The sink sees every cache's policy; the L2's interval is 10k L2
	// accesses, so run long enough for several intervals to elapse.
	col := &obs.Collector{}
	_, err = Run(ConfigA(), core.DPCS, smallWorkload(),
		RunOptions{WarmupInstr: 100_000, SimInstr: 1_500_000, Seed: 1, Sink: col})
	if err != nil {
		t.Fatal(err)
	}
	if len(col.Events) == 0 {
		t.Fatal("telemetry sink received nothing")
	}
	decisions := 0
	for _, ev := range col.Events {
		if ev.Decision != obs.DecisionTransition {
			decisions++
		}
	}
	if decisions == 0 {
		t.Error("no interval decision events recorded")
	}
}
