package cpusim

import (
	"context"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/trace"
)

// runWith builds a fresh System for (cfg, mode, seed) and drives it with
// its own generator through either the block pipeline or the retained
// scalar reference loop.
func runWith(t *testing.T, cfg SystemConfig, mode core.Mode, w trace.Workload, opts RunOptions, scalar bool) Result {
	t.Helper()
	sys, err := NewSystem(cfg, mode, opts.Seed)
	if err != nil {
		t.Fatal(err)
	}
	sys.scalarLoop = scalar
	gen, err := trace.New(w, opts.Seed)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.run(context.Background(), gen, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestBlockLoopMatchesScalar is the tentpole's safety harness: for
// randomized workloads, seeds and window lengths (deliberately not
// multiples of the block size) across all three modes, the block
// pipeline and the retained per-instruction reference loop must produce
// identical Results — same cycles, stats, energies, transitions.
func TestBlockLoopMatchesScalar(t *testing.T) {
	if testing.Short() {
		t.Skip("differential run is slow")
	}
	rng := stats.NewRNG(0xb10c)
	suite := trace.Suite()
	// Alternate GOMAXPROCS between 1 and 2 so both pipe shapes — the
	// single-CPU synchronous refill and the producer goroutine — are
	// exercised regardless of the host's CPU count.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for i := 0; i < 6; i++ {
		runtime.GOMAXPROCS(1 + i%2)
		w := suite[rng.Intn(len(suite))]
		mode := []core.Mode{core.Baseline, core.SPCS, core.DPCS}[i%3]
		opts := RunOptions{
			// Odd lengths exercise the partial final block.
			WarmupInstr: 40_000 + uint64(rng.Intn(5_000)),
			SimInstr:    300_000 + uint64(rng.Intn(50_000)),
			Seed:        uint64(rng.Intn(1 << 20)),
		}
		blk := runWith(t, ConfigA(), mode, w, opts, false)
		ref := runWith(t, ConfigA(), mode, w, opts, true)
		if !reflect.DeepEqual(blk, ref) {
			t.Fatalf("case %d (%s/%v seed=%d warm=%d sim=%d): block pipeline diverges from scalar\nblock:  %+v\nscalar: %+v",
				i, w.Name, mode, opts.Seed, opts.WarmupInstr, opts.SimInstr, blk, ref)
		}
	}
}

// TestBlockLoopZeroAllocs pins the steady-state allocation contract of
// the batched inner loop: simulating one block heap-allocates nothing.
// The workload's single phase is long enough that no phase re-entry
// (which builds a new Zipf table by design) lands inside the window.
func TestBlockLoopZeroAllocs(t *testing.T) {
	w := trace.Workload{
		Name:      "alloc-gate",
		CodeBytes: 16 << 10,
		JumpProb:  0.02,
		ZipfS:     1.0,
		Phases: []trace.Phase{{
			Instructions:    1 << 40,
			WorkingSetBytes: 1 << 20,
			Mix:             trace.PatternMix{Seq: 0.3, Stride: 0.2, Zipf: 0.3, Chase: 0.1},
			WriteFrac:       0.3,
			MemFrac:         0.4,
		}},
	}
	sys, err := NewSystem(ConfigA(), core.DPCS, 1)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := trace.New(w, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := trace.StartPipe(trace.AsBlock(gen))
	defer p.Close()
	ctx := context.Background()
	// Warm up: fill caches, arm policies, let DPCS settle.
	if err := sys.simulate(ctx, p, 200_000); err != nil {
		t.Fatal(err)
	}
	sys.armPolicies()
	avg := testing.AllocsPerRun(200, func() {
		if err := sys.simulate(ctx, p, trace.BlockSize); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("block loop allocates %v allocs/block, want 0", avg)
	}
}
