package cpusim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
)

// fastOpts keeps unit tests quick while exercising the full pipeline.
func fastOpts() RunOptions {
	return RunOptions{WarmupInstr: 100_000, SimInstr: 400_000, Seed: 1}
}

func smallWorkload() trace.Workload {
	return trace.Workload{
		Name: "unit", CodeBytes: 16 * 1024, JumpProb: 0.02, ZipfS: 1.2,
		Phases: []trace.Phase{{
			Instructions: 1 << 40, WorkingSetBytes: 128 * 1024,
			Mix: trace.PatternMix{Zipf: 0.6, Seq: 0.2}, WriteFrac: 0.3, MemFrac: 0.4,
		}},
	}
}

func TestConfigsMatchTable2(t *testing.T) {
	a := ConfigA()
	if a.ClockHz != 2e9 || a.L1D.Org.SizeBytes != 64<<10 || a.L1D.Org.Assoc != 4 ||
		a.L2.Org.SizeBytes != 2<<20 || a.L2.Org.Assoc != 8 {
		t.Errorf("Config A mismatch: %+v", a)
	}
	if a.L1D.HitCycles != 2 || a.L2.HitCycles != 4 {
		t.Error("Config A latencies")
	}
	if a.L1D.Interval != 100_000 || a.L2.Interval != 10_000 {
		t.Error("Config A DPCS intervals")
	}
	b := ConfigB()
	if b.ClockHz != 3e9 || b.L1D.Org.SizeBytes != 256<<10 || b.L1D.Org.Assoc != 8 ||
		b.L2.Org.SizeBytes != 8<<20 || b.L2.Org.Assoc != 16 {
		t.Errorf("Config B mismatch: %+v", b)
	}
	if b.L1D.HitCycles != 3 || b.L2.HitCycles != 8 {
		t.Error("Config B latencies")
	}
}

func TestBaselineRun(t *testing.T) {
	r, err := Run(ConfigA(), core.Baseline, smallWorkload(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if r.Instructions != 400_000 {
		t.Errorf("instructions %d", r.Instructions)
	}
	if r.Cycles < r.Instructions {
		t.Errorf("cycles %d below instruction count", r.Cycles)
	}
	if r.IPC <= 0 || r.IPC > 1 {
		t.Errorf("IPC %v", r.IPC)
	}
	// Every instruction fetches: L1I accesses == instructions.
	if r.L1I.Stats.Accesses != r.Instructions {
		t.Errorf("L1I accesses %d", r.L1I.Stats.Accesses)
	}
	// ~40% of instructions access data.
	frac := float64(r.L1D.Stats.Accesses) / float64(r.Instructions)
	if frac < 0.35 || frac > 0.45 {
		t.Errorf("L1D access fraction %v", frac)
	}
	if r.TotalCacheEnergyJ <= 0 {
		t.Error("no energy accounted")
	}
	if r.L2.Energy.StaticJ <= r.L1D.Energy.StaticJ {
		t.Error("L2 static energy should dominate L1's")
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(ConfigA(), core.DPCS, smallWorkload(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(ConfigA(), core.DPCS, smallWorkload(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.TotalCacheEnergyJ != b.TotalCacheEnergyJ {
		t.Fatalf("same-seed runs differ: %v/%v vs %v/%v",
			a.Cycles, a.TotalCacheEnergyJ, b.Cycles, b.TotalCacheEnergyJ)
	}
}

func TestSPCSSavesEnergyWithSmallOverhead(t *testing.T) {
	w := smallWorkload()
	base, err := Run(ConfigA(), core.Baseline, w, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	spcs, err := Run(ConfigA(), core.SPCS, w, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	saving := 1 - spcs.TotalCacheEnergyJ/base.TotalCacheEnergyJ
	if saving < 0.40 || saving > 0.70 {
		t.Errorf("SPCS saving %v outside the paper's ballpark (~55%%)", saving)
	}
	overhead := float64(spcs.Cycles)/float64(base.Cycles) - 1
	if overhead > 0.03 {
		t.Errorf("SPCS overhead %v above the paper's ~2.3%% worst case", overhead)
	}
	if overhead < -0.005 {
		t.Errorf("SPCS faster than baseline by %v — implausible", -overhead)
	}
	// SPCS performs exactly one transition per cache, before measurement.
	if spcs.L1D.Transitions != 0 || spcs.L2.Transitions != 0 {
		t.Errorf("SPCS transitions during measurement: %d/%d",
			spcs.L1D.Transitions, spcs.L2.Transitions)
	}
}

func TestDPCSSavesAtLeastAsMuchAsSPCSOnIdleCache(t *testing.T) {
	// A small working set leaves the caches over-provisioned — exactly
	// the situation DPCS exploits (paper Sec. 3.3).
	w := smallWorkload()
	opts := RunOptions{WarmupInstr: 200_000, SimInstr: 1_000_000, Seed: 1}
	base, err := Run(ConfigA(), core.Baseline, w, opts)
	if err != nil {
		t.Fatal(err)
	}
	spcs, err := Run(ConfigA(), core.SPCS, w, opts)
	if err != nil {
		t.Fatal(err)
	}
	dpcs, err := Run(ConfigA(), core.DPCS, w, opts)
	if err != nil {
		t.Fatal(err)
	}
	sS := 1 - spcs.TotalCacheEnergyJ/base.TotalCacheEnergyJ
	sD := 1 - dpcs.TotalCacheEnergyJ/base.TotalCacheEnergyJ
	if sD < sS {
		t.Errorf("DPCS saving %v below SPCS %v on an over-provisioned cache", sD, sS)
	}
}

func TestDPCSUsesLowerVoltage(t *testing.T) {
	w := smallWorkload()
	opts := RunOptions{WarmupInstr: 200_000, SimInstr: 1_000_000, Seed: 1}
	dpcs, err := Run(ConfigA(), core.DPCS, w, opts)
	if err != nil {
		t.Fatal(err)
	}
	// The L2 must spend some time at its lowest level for this workload.
	if dpcs.L2.TimeAtLevelCycles[0] == 0 {
		t.Errorf("DPCS L2 never reached VDD1: %v", dpcs.L2.TimeAtLevelCycles)
	}
	if len(dpcs.L2.LevelVolts) != 3 {
		t.Errorf("level count %d", len(dpcs.L2.LevelVolts))
	}
}

func TestMissesCostCycles(t *testing.T) {
	// A memory-hostile workload must run at far lower IPC than a
	// cache-resident one.
	friendly := smallWorkload()
	hostile := trace.Workload{
		Name: "hostile", CodeBytes: 16 * 1024, JumpProb: 0.02, ZipfS: 0.1,
		Phases: []trace.Phase{{
			Instructions: 1 << 40, WorkingSetBytes: 32 << 20,
			Mix: trace.PatternMix{Chase: 0.9}, WriteFrac: 0.2, MemFrac: 0.5,
		}},
	}
	rf, err := Run(ConfigA(), core.Baseline, friendly, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	rh, err := Run(ConfigA(), core.Baseline, hostile, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if rh.IPC >= rf.IPC/2 {
		t.Errorf("hostile IPC %v not far below friendly %v", rh.IPC, rf.IPC)
	}
}

func TestWritebacksReachL2(t *testing.T) {
	w := smallWorkload()
	r, err := Run(ConfigA(), core.Baseline, w, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	// With 30% writes and an L1-overflowing working set, L1D evictions
	// must produce L2 write traffic beyond demand misses.
	demand := r.L1I.Stats.Misses + r.L1D.Stats.Misses
	if r.L2.Stats.Accesses <= demand {
		t.Errorf("L2 accesses %d do not include writebacks (demand %d)",
			r.L2.Stats.Accesses, demand)
	}
	if r.L2.Stats.Writes == 0 {
		t.Error("no L2 writes")
	}
}

func TestResultString(t *testing.T) {
	r, err := Run(ConfigA(), core.Baseline, smallWorkload(),
		RunOptions{WarmupInstr: 1000, SimInstr: 10_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.String() == "" {
		t.Error("empty String()")
	}
}

func TestRunDebugExposesPolicies(t *testing.T) {
	d, err := RunDebug(ConfigA(), core.DPCS, smallWorkload(),
		RunOptions{WarmupInstr: 10_000, SimInstr: 50_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range d.Policies {
		if p == nil {
			t.Errorf("policy %d nil in DPCS mode", i)
		}
	}
}

func TestBlockAlign(t *testing.T) {
	if blockAlign(0x12345, 64) != 0x12340 {
		t.Errorf("blockAlign: %#x", blockAlign(0x12345, 64))
	}
	if blockAlign(0x1000, 64) != 0x1000 {
		t.Error("aligned address changed")
	}
}

func TestSeedChangesFaultMapNotOutcomeMuch(t *testing.T) {
	// The paper found < 1% variation across random fault maps; verify
	// the qualitative claim: energy varies little across seeds.
	w := smallWorkload()
	opts := fastOpts()
	r1, err := Run(ConfigA(), core.SPCS, w, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Seed = 99
	r2, err := Run(ConfigA(), core.SPCS, w, opts)
	if err != nil {
		t.Fatal(err)
	}
	rel := (r2.TotalCacheEnergyJ - r1.TotalCacheEnergyJ) / r1.TotalCacheEnergyJ
	if rel < 0 {
		rel = -rel
	}
	if rel > 0.05 {
		t.Errorf("energy varies %v across fault-map seeds", rel)
	}
}
