package cpusim

import (
	"context"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/trace"
)

// TestTimelineReconciliation is the acceptance test for the timeline
// artifact: a DPCS run's JSONL transition events must exactly reconcile,
// per cache, with the controllers' own counters — event count with
// Transitions(), summed writebacks with TransitionWritebacks(), and the
// piecewise-constant level trajectory with TimeAtLevelCycles().
func TestTimelineReconciliation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "timeline.jsonl")
	sink, err := obs.CreateJSONL(path)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(ConfigA(), core.DPCS, 1)
	if err != nil {
		t.Fatal(err)
	}
	gen := trace.MustNew(smallWorkload(), 1)
	opts := RunOptions{WarmupInstr: 100_000, SimInstr: 1_500_000, Seed: 1, Sink: sink}
	if _, err := sys.run(context.Background(), gen, opts); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	events, err := obs.ReadPolicyTimeline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("empty timeline")
	}

	for _, lv := range []*level{sys.l1i, sys.l1d, sys.l2} {
		ctrl := lv.ctrl
		name := ctrl.Cache.Name()
		// Replay this cache's transitions over the timeline.
		curLevel := ctrl.Levels.N() // controllers start at the top level
		lastCycle := uint64(0)
		timeAt := make([]uint64, ctrl.Levels.N())
		transitions, writebacks := 0, 0
		for _, ev := range events {
			if ev.CacheName != name || ev.Decision != obs.DecisionTransition {
				continue
			}
			if ev.FromLevel != curLevel {
				t.Fatalf("%s: transition at cycle %d from level %d, expected %d",
					name, ev.Cycle, ev.FromLevel, curLevel)
			}
			if ev.Cycle < lastCycle {
				t.Fatalf("%s: timeline not cycle-ordered", name)
			}
			timeAt[curLevel-1] += ev.Cycle - lastCycle
			lastCycle = ev.Cycle
			curLevel = ev.ToLevel
			transitions++
			writebacks += ev.Writebacks
		}
		timeAt[curLevel-1] += sys.cycles - lastCycle

		if transitions != ctrl.Transitions() {
			t.Errorf("%s: %d timeline transitions, controller says %d",
				name, transitions, ctrl.Transitions())
		}
		if uint64(writebacks) != ctrl.TransitionWritebacks() {
			t.Errorf("%s: %d timeline writebacks, controller says %d",
				name, writebacks, ctrl.TransitionWritebacks())
		}
		if curLevel != ctrl.Level() {
			t.Errorf("%s: timeline final level %d, controller at %d",
				name, curLevel, ctrl.Level())
		}
		for i, want := range ctrl.TimeAtLevelCycles() {
			if timeAt[i] != want {
				t.Errorf("%s: level %d residency %d cycles from timeline, controller says %d",
					name, i+1, timeAt[i], want)
			}
		}
	}

	// The L2 policy runs long enough to make interval decisions; they
	// must appear alongside the raw transitions.
	l2Decisions := 0
	for _, ev := range events {
		if ev.CacheName == sys.l2.ctrl.Cache.Name() && ev.Decision != obs.DecisionTransition {
			l2Decisions++
		}
	}
	if l2Decisions == 0 {
		t.Error("no L2 interval decision events in timeline")
	}
}
