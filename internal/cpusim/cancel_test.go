package cpusim

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
)

// TestRunContextCancelled checks a cancelled context stops the
// simulation mid-flight instead of running to completion.
func TestRunContextCancelled(t *testing.T) {
	w, ok := trace.ByName("bzip2.s")
	if !ok {
		t.Fatal("bzip2.s missing from suite")
	}
	// Already-cancelled context: the run must abort during warm-up.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := RunOptions{WarmupInstr: 1_000_000, SimInstr: 100_000_000, Seed: 1}
	start := time.Now()
	_, err := RunContext(ctx, ConfigA(), core.DPCS, w, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// 100M instructions would take many seconds; aborting must not.
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancelled run took %s", elapsed)
	}
}

// TestRunContextMidFlightCancel cancels during the measured window.
func TestRunContextMidFlightCancel(t *testing.T) {
	w, _ := trace.ByName("bzip2.s")
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(30*time.Millisecond, cancel)
	opts := RunOptions{WarmupInstr: 10_000, SimInstr: 2_000_000_000, Seed: 1}
	start := time.Now()
	_, err := RunContext(ctx, ConfigA(), core.Baseline, w, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("mid-flight cancel took %s", elapsed)
	}
}

// TestRunContextBackgroundMatchesRun checks the context plumbing does
// not perturb results: Run and RunContext(Background) are identical.
func TestRunContextBackgroundMatchesRun(t *testing.T) {
	w, _ := trace.ByName("bzip2.s")
	opts := RunOptions{WarmupInstr: 5_000, SimInstr: 20_000, Seed: 3}
	a, err := Run(ConfigA(), core.SPCS, w, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunContext(context.Background(), ConfigA(), core.SPCS, w, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.TotalCacheEnergyJ != b.TotalCacheEnergyJ {
		t.Fatalf("Run %+v != RunContext %+v", a, b)
	}
}
