package cpusim

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
)

// TestRunContextCancelled checks a cancelled context stops the
// simulation mid-flight instead of running to completion.
func TestRunContextCancelled(t *testing.T) {
	w, ok := trace.ByName("bzip2.s")
	if !ok {
		t.Fatal("bzip2.s missing from suite")
	}
	// Already-cancelled context: the run must abort during warm-up.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := RunOptions{WarmupInstr: 1_000_000, SimInstr: 100_000_000, Seed: 1}
	start := time.Now()
	_, err := RunContext(ctx, ConfigA(), core.DPCS, w, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// 100M instructions would take many seconds; aborting must not.
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancelled run took %s", elapsed)
	}
}

// TestRunContextMidFlightCancel cancels during the measured window.
func TestRunContextMidFlightCancel(t *testing.T) {
	w, _ := trace.ByName("bzip2.s")
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(30*time.Millisecond, cancel)
	opts := RunOptions{WarmupInstr: 10_000, SimInstr: 2_000_000_000, Seed: 1}
	start := time.Now()
	_, err := RunContext(ctx, ConfigA(), core.Baseline, w, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("mid-flight cancel took %s", elapsed)
	}
}

// cancellingGen wraps a generator and cancels a context after exactly
// `at` instructions have been produced — landing the cancel mid-block —
// while counting every instruction generated afterwards.
type cancellingGen struct {
	inner  trace.Generator
	at     uint64
	count  uint64
	cancel context.CancelFunc
}

func (g *cancellingGen) Name() string { return g.inner.Name() }

func (g *cancellingGen) Next(ins *trace.Instr) {
	g.count++
	if g.count == g.at {
		g.cancel()
	}
	g.inner.Next(ins)
}

// TestCancelStopsWithinOneBlock pins the block pipeline's cancellation
// granularity: a cancel arriving mid-block must return ctx.Err() at
// the next block-boundary poll, so simulation stops within one block.
// The producer goroutine runs ahead of simulation by at most the two
// arena blocks, bounding generation past the cancel at two blocks.
func TestCancelStopsWithinOneBlock(t *testing.T) {
	// Force the threaded pipe shape so the two-block producer run-ahead
	// bound is what's actually under test, even on a single-CPU host.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(2))
	w, _ := trace.ByName("bzip2.s")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Fire a third of the way into a block, past warmup.
	const fireAt = 50_000 + trace.BlockSize/3
	g := &cancellingGen{inner: trace.MustNew(w, 1), at: fireAt, cancel: cancel}
	opts := RunOptions{WarmupInstr: 50_000, SimInstr: 2_000_000_000, Seed: 1}
	_, err := RunGeneratorContext(ctx, ConfigA(), core.DPCS, g, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	over := g.count - fireAt
	if over > 2*trace.BlockSize {
		t.Fatalf("generated %d instructions past the cancel, want <= %d (two blocks)",
			over, 2*trace.BlockSize)
	}
}

// TestRunContextBackgroundMatchesRun checks the context plumbing does
// not perturb results: Run and RunContext(Background) are identical.
func TestRunContextBackgroundMatchesRun(t *testing.T) {
	w, _ := trace.ByName("bzip2.s")
	opts := RunOptions{WarmupInstr: 5_000, SimInstr: 20_000, Seed: 3}
	a, err := Run(ConfigA(), core.SPCS, w, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunContext(context.Background(), ConfigA(), core.SPCS, w, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.TotalCacheEnergyJ != b.TotalCacheEnergyJ {
		t.Fatalf("Run %+v != RunContext %+v", a, b)
	}
}
