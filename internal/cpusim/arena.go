package cpusim

import (
	"sync/atomic"

	"repro/internal/cache"
	"repro/internal/cacti"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/faultmap"
	"repro/internal/faultmodel"
	"repro/internal/memo"
	"repro/internal/sram"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Arena owns the reusable simulation state for one worker goroutine:
// cache structures, fault-map buffers, trace block arenas and the RNGs
// used during system construction. Consecutive NewSystemArena calls on
// the same arena recycle this memory instead of reallocating it, which
// is what makes short campaign cells cheap (DESIGN.md §13).
//
// Ownership contract: an Arena is confined to one goroutine, and a
// System built on it is valid only until the next NewSystemArena call
// on the same arena — building the next system resets the caches and
// fault maps the previous one still points at. Results are safe to
// retain (Result carries only copies). Callers that need several live
// Systems at once (internal/multicore) must not share one arena.
type Arena struct {
	caches map[cache.Config]*cache.Cache
	maps   map[cache.Config]*mapEntry
	// rngRoot/rngLevel replay NewSystem's seeding draws in place:
	// rngLevel.Reseed(rngRoot.Uint64()) reproduces rngRoot.Split()
	// exactly (see stats.RNG.Reseed), so warm and cold construction
	// consume identical streams.
	rngRoot  stats.RNG
	rngLevel stats.RNG
	pipes    trace.PipeArena
}

// NewArena returns an empty arena ready for NewSystemArena.
func NewArena() *Arena {
	return &Arena{
		caches: make(map[cache.Config]*cache.Cache),
		maps:   make(map[cache.Config]*mapEntry),
	}
}

// mapEntry is one pooled fault map plus the pristine snapshot of its
// last Monte-Carlo population. Grid sweeps pin one seed across many
// cells (so that baseline/SPCS/DPCS cells are comparable), which makes
// consecutive builds redraw the exact same map — the snapshot turns
// that redraw into a memcpy.
type mapEntry struct {
	m      *faultmap.Map
	snap   []uint8
	seed   uint64
	seeded bool
}

// cacheFor returns a freshly Reset cache for cfg, reusing the arena's
// previous instance when one exists.
func (a *Arena) cacheFor(cfg cache.Config) *cache.Cache {
	if c, ok := a.caches[cfg]; ok {
		c.Reset()
		return c
	}
	c := cache.MustNew(cfg)
	a.caches[cfg] = c
	return c
}

// faultMapFor returns cfg's fault map populated for plan by Monte Carlo
// under the given system seed, reusing the arena's buffer. The content
// is identical to the cold PopulateMapMonteCarlo path: rng's state is
// fully determined by (seed, level build order), and cfg determines the
// plan (both are memoized derivations of the same organisation), so
// when the previous population of this map used the same seed the
// pristine snapshot already holds exactly what a redraw would produce
// and is restored with a copy instead. The rng draws skipped on the
// restore path are invisible — each level's RNG is a fresh split
// discarded after its build.
func (a *Arena) faultMapFor(cfg cache.Config, plan core.LevelPlan, nblocks int, seed uint64, rng *stats.RNG) *faultmap.Map {
	e, ok := a.maps[cfg]
	if !ok {
		e = &mapEntry{m: faultmap.NewMap(plan.Levels, nblocks)}
		a.maps[cfg] = e
	}
	if e.seeded && e.seed == seed && e.m.NumBlocks() == nblocks {
		e.m.RestoreFM(e.snap)
		return e.m
	}
	core.PopulateMapMonteCarloInto(rng, plan, nblocks, e.m)
	e.snap = e.m.SnapshotFM(e.snap)
	e.seed, e.seeded = seed, true
	return e.m
}

// statics memoizes the per-organisation model derivations every system
// build needs: the CACTI energy model, the nominal-VDD level set, the
// fault model with its three-voltage plan and the PCS-overhead CACTI
// variant. All of it is pure derived data fully determined by the
// cacti.Org (technology and CACTI parameters are fixed at Tech45SOI /
// DefaultParams), computed once per process and shared read-only
// across workers — the memo layer of DESIGN.md §13.
var statics atomic.Pointer[memo.Table]

func init() { statics.Store(memo.NewTable()) }

// ResetStatics drops the memoized per-organisation model derivations,
// so each is recomputed on next use. In-flight readers keep the old
// table; benchmarks use this to measure the cold construction path.
func ResetStatics() { statics.Store(memo.NewTable()) }

type baseKey struct{ org cacti.Org }
type pcsKey struct{ org cacti.Org }

// baseStatics is what a Baseline-mode level needs.
type baseStatics struct {
	cm        *cacti.Model
	nomLevels faultmap.Levels
}

// pcsStatics adds the fault-model-derived plan for SPCS/DPCS levels.
// It is memoized separately from baseStatics so a failing SelectLevels
// (possible for degenerate organisations) cannot poison baseline runs.
type pcsStatics struct {
	plan  core.LevelPlan
	pcsCM *cacti.Model
}

func baseStaticsFor(org cacti.Org) (baseStatics, error) {
	return memo.Get(statics.Load(), baseKey{org: org}, func() (baseStatics, error) {
		tech := device.Tech45SOI()
		cm, err := cacti.New(org, tech, cacti.DefaultParams())
		if err != nil {
			return baseStatics{}, err
		}
		return baseStatics{cm: cm, nomLevels: faultmap.MustLevels(tech.VDDNom)}, nil
	})
}

func pcsStaticsFor(org cacti.Org, geom faultmodel.Geometry, ber sram.BERModel) (pcsStatics, error) {
	return memo.Get(statics.Load(), pcsKey{org: org}, func() (pcsStatics, error) {
		base, err := baseStaticsFor(org)
		if err != nil {
			return pcsStatics{}, err
		}
		tech := device.Tech45SOI()
		fm, err := faultmodel.New(geom, ber)
		if err != nil {
			return pcsStatics{}, err
		}
		capFloor := faultmodel.VDD1CapacityFloor(org.Assoc)
		plan, err := core.SelectLevels(fm, tech.VDDNom, tech.VDDMin, capFloor)
		if err != nil {
			return pcsStatics{}, err
		}
		return pcsStatics{plan: plan, pcsCM: base.cm.WithPCS(plan.Levels.FMBits())}, nil
	})
}
