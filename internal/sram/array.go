package sram

import (
	"fmt"

	"repro/internal/stats"
)

// Array is a functional model of a voltage-scaled SRAM data array:
// Rows x Cols bit cells, each with its own minimum operating voltage.
// Reads and writes behave correctly for cells whose Vmin is at or below
// the current supply; cells operated below their Vmin misbehave (see
// faultKind). The array is the device-under-test for the March SS BIST
// engine and the physical backing for fault-map population.
type Array struct {
	rows, cols int
	vdd        float64
	// vmin[r*cols+c] is the cell's minimum reliable operating voltage.
	vmin []float64
	// data holds the stored bits (packed 1 bit per cell for clarity,
	// one byte per cell; arrays here are small enough that clarity wins).
	data []uint8
	// faultKind[r*cols+c] describes how the cell misbehaves below Vmin.
	faultKind []FaultKind
}

// FaultKind describes the failure mode of a cell operated below its Vmin.
// March SS targets all static simple faults; we model the three dominant
// voltage-induced modes. All of them are detected by March SS.
type FaultKind uint8

const (
	// StuckAt0 reads as 0 regardless of what was written.
	StuckAt0 FaultKind = iota
	// StuckAt1 reads as 1 regardless of what was written.
	StuckAt1
	// WriteFail retains its previous value when written (transition
	// fault / write failure, the dominant low-voltage 6T failure mode).
	WriteFail
	// ReadFlip returns the stored value's complement on read
	// (destructive read disturb; the cell value is also flipped).
	ReadFlip
	numFaultKinds
)

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	switch k {
	case StuckAt0:
		return "stuck-at-0"
	case StuckAt1:
		return "stuck-at-1"
	case WriteFail:
		return "write-fail"
	case ReadFlip:
		return "read-flip"
	default:
		return fmt.Sprintf("FaultKind(%d)", uint8(k))
	}
}

// NewArray builds an array of rows x cols cells whose Vmins are sampled
// from the BER model over the voltage range [vlo, vhi] using the given
// RNG. Failure modes are assigned uniformly at random per faulty-capable
// cell. The array starts at vhi (fully reliable) with all cells zero.
func NewArray(rng *stats.RNG, model BERModel, rows, cols int, vlo, vhi float64) *Array {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("sram: invalid array dims %dx%d", rows, cols))
	}
	wc, ok := model.(*WangCalhounBER)
	if !ok {
		panic("sram: NewArray requires a *WangCalhounBER model for Vmin inversion")
	}
	n := rows * cols
	a := &Array{
		rows:      rows,
		cols:      cols,
		vdd:       vhi,
		vmin:      make([]float64, n),
		data:      make([]uint8, n),
		faultKind: make([]FaultKind, n),
	}
	for i := 0; i < n; i++ {
		a.vmin[i] = wc.VminFromUniform(rng.Float64(), vlo, vhi)
		a.faultKind[i] = FaultKind(rng.Intn(int(numFaultKinds)))
	}
	return a
}

// Rows returns the number of rows.
func (a *Array) Rows() int { return a.rows }

// Cols returns the number of columns (bits per row).
func (a *Array) Cols() int { return a.cols }

// VDD returns the current supply voltage.
func (a *Array) VDD() float64 { return a.vdd }

// SetVDD changes the supply voltage. Cell contents are retained only for
// cells whose Vmin is at or below the new voltage; cells that become
// unreliable have indeterminate content, modelled by corrupting them
// according to their failure mode.
func (a *Array) SetVDD(vdd float64) {
	a.vdd = vdd
	for i, vm := range a.vmin {
		if vdd < vm {
			switch a.faultKind[i] {
			case StuckAt0:
				a.data[i] = 0
			case StuckAt1:
				a.data[i] = 1
			}
			// WriteFail and ReadFlip cells retain data until accessed.
		}
	}
}

func (a *Array) index(row, col int) int {
	if row < 0 || row >= a.rows || col < 0 || col >= a.cols {
		panic(fmt.Sprintf("sram: cell (%d,%d) out of %dx%d array", row, col, a.rows, a.cols))
	}
	return row*a.cols + col
}

// faulty reports whether the cell is operating below its Vmin.
func (a *Array) faulty(i int) bool { return a.vdd < a.vmin[i] }

// ReadBit reads one cell at the current supply voltage, applying the
// cell's failure mode if it is operating below Vmin.
func (a *Array) ReadBit(row, col int) uint8 {
	i := a.index(row, col)
	if !a.faulty(i) {
		return a.data[i]
	}
	switch a.faultKind[i] {
	case StuckAt0:
		return 0
	case StuckAt1:
		return 1
	case ReadFlip:
		v := a.data[i] ^ 1
		a.data[i] = v // destructive read disturb
		return v
	default: // WriteFail: reads are fine
		return a.data[i]
	}
}

// WriteBit writes one cell at the current supply voltage, applying the
// cell's failure mode if it is operating below Vmin.
func (a *Array) WriteBit(row, col int, v uint8) {
	if v > 1 {
		panic("sram: WriteBit value must be 0 or 1")
	}
	i := a.index(row, col)
	if !a.faulty(i) {
		a.data[i] = v
		return
	}
	switch a.faultKind[i] {
	case StuckAt0:
		a.data[i] = 0
	case StuckAt1:
		a.data[i] = 1
	case WriteFail:
		// Retains the old value: the write fails silently.
	default: // ReadFlip: writes succeed
		a.data[i] = v
	}
}

// CellVmin returns the minimum reliable operating voltage of a cell.
// A cell that is faulty even at the top of the sampled range reports +Inf.
func (a *Array) CellVmin(row, col int) float64 { return a.vmin[a.index(row, col)] }

// CellFaultKind returns the failure mode the cell exhibits below Vmin.
func (a *Array) CellFaultKind(row, col int) FaultKind { return a.faultKind[a.index(row, col)] }

// RowVmin returns the minimum voltage at which every cell of the row is
// reliable, i.e. the max of the row's cell Vmins. This is the quantity
// the fault map quantises into FM bits.
func (a *Array) RowVmin(row int) float64 {
	m := 0.0
	for c := 0; c < a.cols; c++ {
		if vm := a.vmin[a.index(row, c)]; vm > m {
			m = vm
		}
	}
	return m
}

// FaultyCellCount returns how many cells are unreliable at voltage vdd.
func (a *Array) FaultyCellCount(vdd float64) int {
	n := 0
	for _, vm := range a.vmin {
		if vdd < vm {
			n++
		}
	}
	return n
}

// FaultyRowCount returns how many rows contain at least one unreliable
// cell at voltage vdd.
func (a *Array) FaultyRowCount(vdd float64) int {
	n := 0
	for r := 0; r < a.rows; r++ {
		if vdd < a.RowVmin(r) {
			n++
		}
	}
	return n
}

// InjectFault forces a cell's Vmin and failure mode, for fault-injection
// tests. Passing vmin = +Inf makes the cell permanently faulty.
func (a *Array) InjectFault(row, col int, vmin float64, kind FaultKind) {
	if kind >= numFaultKinds {
		panic(fmt.Sprintf("sram: invalid fault kind %d", kind))
	}
	i := a.index(row, col)
	a.vmin[i] = vmin
	a.faultKind[i] = kind
}

// PerfectArray returns an array with no faults at any voltage >= vlo,
// useful as a control in tests.
func PerfectArray(rows, cols int, vlo float64) *Array {
	n := rows * cols
	a := &Array{
		rows:      rows,
		cols:      cols,
		vdd:       1.0,
		vmin:      make([]float64, n),
		data:      make([]uint8, n),
		faultKind: make([]FaultKind, n),
	}
	for i := range a.vmin {
		a.vmin[i] = vlo
	}
	return a
}
