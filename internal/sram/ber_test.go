package sram

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBERMonotoneNonIncreasing(t *testing.T) {
	m := NewWangCalhounBER()
	prev := math.Inf(1)
	for v := 0.20; v <= 1.20; v += 0.005 {
		b := m.BER(v)
		if b > prev+1e-18 {
			t.Fatalf("BER increased with voltage at %v V: %v > %v", v, b, prev)
		}
		prev = b
	}
}

func TestBERAnchors(t *testing.T) {
	m := NewWangCalhounBER()
	cases := []struct{ v, want float64 }{
		{1.00, 1e-9},
		{0.70, math.Pow(10, -4.7)},
		{0.54, math.Pow(10, -3.8)},
		{0.30, math.Pow(10, -1.8)},
	}
	for _, c := range cases {
		got := m.BER(c.v)
		if math.Abs(math.Log10(got)-math.Log10(c.want)) > 1e-9 {
			t.Errorf("BER(%v) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestBERInterpolatesLogLinear(t *testing.T) {
	m := NewWangCalhounBER()
	// Midpoint of the (0.90,-7.5)..(1.00,-9.0) segment.
	got := math.Log10(m.BER(0.95))
	if math.Abs(got-(-8.25)) > 1e-9 {
		t.Errorf("log10 BER(0.95) = %v, want -8.25", got)
	}
}

func TestBERClamps(t *testing.T) {
	m := NewWangCalhounBER()
	if got := m.BER(2.0); got != 1e-12 {
		t.Errorf("high-voltage clamp %v, want 1e-12", got)
	}
	if got := m.BER(0.0); got != 0.3 {
		t.Errorf("low-voltage clamp %v, want 0.3", got)
	}
}

func TestBERMagnitudesMatchFig2(t *testing.T) {
	// The paper's Fig. 2 spans roughly 1e-9..1e-3 over the studied range.
	m := NewWangCalhounBER()
	if b := m.BER(1.0); b > 1e-8 {
		t.Errorf("nominal BER %v too high", b)
	}
	if b := m.BER(0.45); b < 1e-4 || b > 1e-2 {
		t.Errorf("low-voltage BER %v outside Fig. 2 range", b)
	}
}

func TestCustomBERValidation(t *testing.T) {
	if _, err := NewCustomBER(map[float64]float64{0.5: 1e-3}); err == nil {
		t.Error("single-point model accepted")
	}
	if _, err := NewCustomBER(map[float64]float64{0.5: 1e-3, 0.8: 1e-2}); err == nil {
		t.Error("increasing BER accepted")
	}
	if _, err := NewCustomBER(map[float64]float64{0.5: 2, 0.8: 1e-5}); err == nil {
		t.Error("BER >= 1 accepted")
	}
	m, err := NewCustomBER(map[float64]float64{0.5: 1e-3, 0.8: 1e-6, 1.0: 1e-9})
	if err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
	if got := m.BER(0.8); math.Abs(math.Log10(got)+6) > 1e-9 {
		t.Errorf("custom BER(0.8) = %v", got)
	}
}

func TestVminInversionConsistency(t *testing.T) {
	// For any quantile u, the returned Vmin must satisfy BER(Vmin) <= u
	// and BER just below Vmin > u (when in range).
	m := NewWangCalhounBER()
	if err := quick.Check(func(raw uint32) bool {
		u := math.Pow(10, -9*float64(raw%1000)/999) // spread over 1..1e-9
		v := m.VminFromUniform(u, 0.30, 1.00)
		if math.IsInf(v, 1) {
			return m.BER(1.00) > u
		}
		if v <= 0.30 {
			return m.BER(0.30) <= u
		}
		return m.BER(v) <= u && m.BER(v-1e-6) >= u*(1-1e-9)
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestVminPopulationMatchesBER(t *testing.T) {
	// Sampling many cells' Vmin and thresholding at voltage v must give a
	// fault fraction close to BER(v).
	m := NewWangCalhounBER()
	const n = 2_000_000
	rng := newTestRNG(99)
	faultyAt := func(v float64) int {
		c := 0
		rr := newTestRNG(99)
		for i := 0; i < n; i++ {
			if m.VminFromUniform(rr.Float64(), 0.30, 1.00) > v {
				c++
			}
		}
		return c
	}
	_ = rng
	v := 0.45
	want := m.BER(v)
	got := float64(faultyAt(v)) / n
	if math.Abs(got-want)/want > 0.1 {
		t.Errorf("population fault rate at %v V = %v, BER = %v", v, got, want)
	}
}
