package sram

import (
	"testing"

	"repro/internal/stats"
)

// newTestRNG gives array tests a deterministic source.
func newTestRNG(seed uint64) *stats.RNG { return stats.NewRNG(seed) }

func TestPerfectArrayStoresData(t *testing.T) {
	a := PerfectArray(8, 16, 0.3)
	a.SetVDD(0.5)
	for r := 0; r < 8; r++ {
		for c := 0; c < 16; c++ {
			v := uint8((r + c) % 2)
			a.WriteBit(r, c, v)
		}
	}
	for r := 0; r < 8; r++ {
		for c := 0; c < 16; c++ {
			want := uint8((r + c) % 2)
			if got := a.ReadBit(r, c); got != want {
				t.Fatalf("cell (%d,%d) = %d, want %d", r, c, got, want)
			}
		}
	}
	if n := a.FaultyCellCount(0.3); n != 0 {
		t.Errorf("perfect array reports %d faulty cells", n)
	}
}

func TestArrayDimsAndAccessors(t *testing.T) {
	a := PerfectArray(4, 8, 0.3)
	if a.Rows() != 4 || a.Cols() != 8 {
		t.Fatalf("dims %dx%d", a.Rows(), a.Cols())
	}
	a.SetVDD(0.77)
	if a.VDD() != 0.77 {
		t.Fatalf("VDD = %v", a.VDD())
	}
}

func TestStuckAt0(t *testing.T) {
	a := PerfectArray(2, 2, 0.3)
	a.InjectFault(0, 0, 0.8, StuckAt0)
	a.SetVDD(1.0) // above Vmin: healthy
	a.WriteBit(0, 0, 1)
	if got := a.ReadBit(0, 0); got != 1 {
		t.Fatalf("healthy cell read %d", got)
	}
	a.SetVDD(0.7) // below Vmin: stuck at 0
	a.WriteBit(0, 0, 1)
	if got := a.ReadBit(0, 0); got != 0 {
		t.Fatalf("stuck-at-0 cell read %d", got)
	}
}

func TestStuckAt1(t *testing.T) {
	a := PerfectArray(2, 2, 0.3)
	a.InjectFault(1, 1, 0.8, StuckAt1)
	a.SetVDD(0.7)
	a.WriteBit(1, 1, 0)
	if got := a.ReadBit(1, 1); got != 1 {
		t.Fatalf("stuck-at-1 cell read %d", got)
	}
}

func TestWriteFailRetainsOldValue(t *testing.T) {
	a := PerfectArray(2, 2, 0.3)
	a.SetVDD(1.0)
	a.WriteBit(0, 1, 1) // healthy write
	a.InjectFault(0, 1, 0.9, WriteFail)
	a.SetVDD(0.7)
	a.WriteBit(0, 1, 0) // fails silently
	if got := a.ReadBit(0, 1); got != 1 {
		t.Fatalf("write-fail cell lost retained value: %d", got)
	}
}

func TestReadFlipDisturbsCell(t *testing.T) {
	a := PerfectArray(2, 2, 0.3)
	a.SetVDD(1.0)
	a.WriteBit(0, 0, 0)
	a.InjectFault(0, 0, 0.9, ReadFlip)
	a.SetVDD(0.7)
	if got := a.ReadBit(0, 0); got != 1 {
		t.Fatalf("read-flip first read %d, want 1", got)
	}
	// The destructive read left the flipped value; reading again flips back.
	if got := a.ReadBit(0, 0); got != 0 {
		t.Fatalf("read-flip second read %d, want 0", got)
	}
}

func TestFaultInclusionByConstruction(t *testing.T) {
	// Every cell has a single Vmin: faulty at v implies faulty at all
	// lower voltages. Verify over a sampled array.
	rng := newTestRNG(7)
	a := NewArray(rng, NewWangCalhounBER(), 32, 64, 0.30, 1.00)
	voltages := []float64{1.0, 0.8, 0.6, 0.5, 0.4, 0.3}
	prevFaulty := make(map[int]bool)
	for _, v := range voltages {
		cur := make(map[int]bool)
		for r := 0; r < a.Rows(); r++ {
			for c := 0; c < a.Cols(); c++ {
				if a.CellVmin(r, c) > v {
					cur[r*a.Cols()+c] = true
				}
			}
		}
		for cell := range prevFaulty {
			if !cur[cell] {
				t.Fatalf("cell %d faulty at higher V but healthy at %v V", cell, v)
			}
		}
		prevFaulty = cur
	}
}

func TestRowVminIsMaxOfCells(t *testing.T) {
	a := PerfectArray(2, 4, 0.3)
	a.InjectFault(0, 1, 0.55, StuckAt0)
	a.InjectFault(0, 3, 0.72, WriteFail)
	if got := a.RowVmin(0); got != 0.72 {
		t.Fatalf("row Vmin %v, want 0.72", got)
	}
	if got := a.RowVmin(1); got != 0.3 {
		t.Fatalf("clean row Vmin %v, want 0.3", got)
	}
}

func TestFaultyCounts(t *testing.T) {
	a := PerfectArray(4, 4, 0.3)
	a.InjectFault(0, 0, 0.9, StuckAt0)
	a.InjectFault(0, 1, 0.8, StuckAt1)
	a.InjectFault(2, 3, 0.7, WriteFail)
	if got := a.FaultyCellCount(0.85); got != 1 {
		t.Errorf("faulty cells at 0.85 = %d, want 1", got)
	}
	if got := a.FaultyCellCount(0.6); got != 3 {
		t.Errorf("faulty cells at 0.6 = %d, want 3", got)
	}
	if got := a.FaultyRowCount(0.6); got != 2 {
		t.Errorf("faulty rows at 0.6 = %d, want 2", got)
	}
}

func TestFaultRateMatchesBERModel(t *testing.T) {
	rng := newTestRNG(11)
	model := NewWangCalhounBER()
	a := NewArray(rng, model, 256, 512, 0.30, 1.00) // 131072 cells
	v := 0.45
	want := model.BER(v)
	got := float64(a.FaultyCellCount(v)) / float64(256*512)
	if got < want*0.7 || got > want*1.3 {
		t.Errorf("array fault rate %v at %v V, model %v", got, v, want)
	}
}

func TestSetVDDCorruptsStuckCells(t *testing.T) {
	a := PerfectArray(1, 2, 0.3)
	a.SetVDD(1.0)
	a.WriteBit(0, 0, 1)
	a.WriteBit(0, 1, 0)
	a.InjectFault(0, 0, 0.9, StuckAt0)
	a.InjectFault(0, 1, 0.9, StuckAt1)
	a.SetVDD(0.5)
	// Even without an access, stored state reflects the stuck values.
	a.SetVDD(1.0) // back up: content was lost while below Vmin
	if got := a.ReadBit(0, 0); got != 0 {
		t.Errorf("stuck-at-0 content after round trip: %d", got)
	}
	if got := a.ReadBit(0, 1); got != 1 {
		t.Errorf("stuck-at-1 content after round trip: %d", got)
	}
}

func TestArrayPanics(t *testing.T) {
	a := PerfectArray(2, 2, 0.3)
	for _, f := range []func(){
		func() { a.ReadBit(2, 0) },
		func() { a.ReadBit(0, 2) },
		func() { a.ReadBit(-1, 0) },
		func() { a.WriteBit(0, 0, 2) },
		func() { a.InjectFault(0, 0, 0.5, FaultKind(99)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestFaultKindString(t *testing.T) {
	names := map[FaultKind]string{
		StuckAt0: "stuck-at-0", StuckAt1: "stuck-at-1",
		WriteFail: "write-fail", ReadFlip: "read-flip",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}

func TestNewArrayDeterministic(t *testing.T) {
	m := NewWangCalhounBER()
	a := NewArray(newTestRNG(5), m, 16, 16, 0.30, 1.00)
	b := NewArray(newTestRNG(5), m, 16, 16, 0.30, 1.00)
	for r := 0; r < 16; r++ {
		for c := 0; c < 16; c++ {
			if a.CellVmin(r, c) != b.CellVmin(r, c) || a.CellFaultKind(r, c) != b.CellFaultKind(r, c) {
				t.Fatalf("same-seed arrays differ at (%d,%d)", r, c)
			}
		}
	}
}
