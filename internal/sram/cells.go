package sram

import "fmt"

// CellType selects the SRAM bit-cell design. The paper builds on
// standard 6T cells and argues that low-voltage-hardened cells (8T, 10T)
// buy their lower Vmin with "inherently high area overheads"; this
// library quantifies that trade-off so the comparison in the paper's
// Sec. 2 can be reproduced: an 8T/10T array reaches a lower voltage
// without fault tolerance, but the 6T + power/capacity-scaling
// combination gets most of the voltage reduction at a fraction of the
// area.
type CellType int

const (
	// Cell6T is the standard 6-transistor cell the paper assumes.
	Cell6T CellType = iota
	// Cell8T adds a decoupled read port (Chang et al.), improving read
	// stability at low voltage.
	Cell8T
	// Cell10T further isolates the read path (Calhoun-Chandrakasan),
	// enabling sub-threshold reads.
	Cell10T
)

// String implements fmt.Stringer.
func (c CellType) String() string {
	switch c {
	case Cell6T:
		return "6T"
	case Cell8T:
		return "8T"
	case Cell10T:
		return "10T"
	default:
		return fmt.Sprintf("CellType(%d)", int(c))
	}
}

// CellParams describes a bit-cell design's fault and cost behaviour.
type CellParams struct {
	Type CellType
	// AreaFactor is the cell area relative to 6T. The paper quotes 66 %
	// overhead for 10T SRAM (i.e. factor 1.66); 8T is ~1.3x.
	AreaFactor float64
	// LeakageFactor is static leakage relative to 6T (more transistors
	// leak more).
	LeakageFactor float64
	// VminShift is subtracted from the supply before evaluating the 6T
	// BER curve: a hardened cell at VDD behaves like a 6T cell at
	// VDD + shift. 8T read-decoupling buys roughly 100 mV; 10T ~200 mV.
	VminShift float64
}

// Cells returns the parameter set for a cell type.
func Cells(t CellType) CellParams {
	switch t {
	case Cell8T:
		return CellParams{Type: Cell8T, AreaFactor: 1.30, LeakageFactor: 1.30, VminShift: 0.10}
	case Cell10T:
		return CellParams{Type: Cell10T, AreaFactor: 1.66, LeakageFactor: 1.60, VminShift: 0.20}
	default:
		return CellParams{Type: Cell6T, AreaFactor: 1.0, LeakageFactor: 1.0, VminShift: 0}
	}
}

// ShiftedBER wraps a base (6T) BER model with a cell design's Vmin
// shift: BER_cell(v) = BER_6T(v + shift).
type ShiftedBER struct {
	Base  BERModel
	Shift float64
}

// BER implements BERModel.
func (s ShiftedBER) BER(vdd float64) float64 { return s.Base.BER(vdd + s.Shift) }

// ForCell returns the effective BER model of the given cell type layered
// over a 6T base model.
func ForCell(base BERModel, t CellType) BERModel {
	p := Cells(t)
	if p.VminShift == 0 {
		return base
	}
	return ShiftedBER{Base: base, Shift: p.VminShift}
}
