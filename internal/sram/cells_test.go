package sram

import (
	"math"
	"testing"
)

func TestCellParams(t *testing.T) {
	p6 := Cells(Cell6T)
	p8 := Cells(Cell8T)
	p10 := Cells(Cell10T)
	if p6.AreaFactor != 1 || p6.LeakageFactor != 1 || p6.VminShift != 0 {
		t.Errorf("6T params: %+v", p6)
	}
	// Area and leakage grow with transistor count; Vmin shift improves.
	if !(p6.AreaFactor < p8.AreaFactor && p8.AreaFactor < p10.AreaFactor) {
		t.Error("area ordering")
	}
	if !(p6.VminShift < p8.VminShift && p8.VminShift < p10.VminShift) {
		t.Error("Vmin shift ordering")
	}
	// Paper quote: 10T SRAM area overhead 66%.
	if math.Abs(p10.AreaFactor-1.66) > 1e-12 {
		t.Errorf("10T area factor %v", p10.AreaFactor)
	}
}

func TestCellTypeString(t *testing.T) {
	if Cell6T.String() != "6T" || Cell8T.String() != "8T" || Cell10T.String() != "10T" {
		t.Error("cell names")
	}
	if CellType(7).String() == "" {
		t.Error("unknown cell name empty")
	}
}

func TestShiftedBER(t *testing.T) {
	base := NewWangCalhounBER()
	ber8 := ForCell(base, Cell8T)
	// An 8T cell at 0.5 V behaves like a 6T cell at 0.6 V.
	if got, want := ber8.BER(0.5), base.BER(0.6); got != want {
		t.Errorf("shifted BER %v, want %v", got, want)
	}
	// 6T passes through unchanged (same object).
	if ForCell(base, Cell6T).BER(0.5) != base.BER(0.5) {
		t.Error("6T shift changed the model")
	}
}

func TestHardenedCellsFailLess(t *testing.T) {
	base := NewWangCalhounBER()
	for _, v := range []float64{0.4, 0.5, 0.6, 0.7} {
		b6 := base.BER(v)
		b8 := ForCell(base, Cell8T).BER(v)
		b10 := ForCell(base, Cell10T).BER(v)
		if !(b10 <= b8 && b8 <= b6) {
			t.Errorf("BER ordering violated at %v V: %v %v %v", v, b6, b8, b10)
		}
	}
}
