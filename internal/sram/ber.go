// Package sram models voltage-scaled 6T SRAM behaviour: the bit error
// rate (BER) as a function of supply voltage, and a functional cell array
// in which every cell has a Monte-Carlo-sampled minimum operating voltage
// (Vmin). A cell read or written below its Vmin misbehaves; at or above
// it, the cell is reliable. Because each cell has a single Vmin, the
// paper's *fault inclusion property* — a bit that fails at some voltage
// fails at all lower voltages — holds by construction, mirroring what the
// authors measured on their 45 nm SOI Red Cooper test chips with March SS.
package sram

import (
	"fmt"
	"math"
	"sort"
)

// BERModel maps supply voltage to the probability that a single SRAM bit
// cell is faulty at that voltage. Implementations must be monotonically
// non-increasing in voltage (fault inclusion at the population level).
type BERModel interface {
	// BER returns the per-bit fault probability at supply voltage vdd.
	BER(vdd float64) float64
}

// anchor is one (voltage, log10 BER) calibration point.
type anchor struct {
	vdd  float64
	logP float64
}

// WangCalhounBER is a monotone piecewise-log-linear BER(VDD) model with
// anchors chosen to match the magnitudes of the paper's Fig. 2 (which was
// computed from the Wang–Calhoun 45 nm read-SNM data): roughly 1e-9 at
// nominal 1.0 V rising to ~1e-3 by ~0.45 V. The read operation is the
// worst case of read/write/hold margins, and the paper adopts it for all
// cell failures, as do we.
type WangCalhounBER struct {
	anchors []anchor
	floor   float64 // lower clamp on BER
	ceil    float64 // upper clamp on BER
}

// NewWangCalhounBER returns the default calibrated BER model.
// See DESIGN.md §5 for the anchor rationale: with 512-bit (64 B) blocks
// the 99 %-capacity voltage lands near 0.70 V and the Config-A L1
// yield-constrained min-VDD near 0.54 V, matching the paper's Table 2.
func NewWangCalhounBER() *WangCalhounBER {
	return &WangCalhounBER{
		anchors: []anchor{
			{0.30, -1.8},
			{0.40, -2.6},
			{0.50, -3.5},
			{0.54, -3.8},
			{0.60, -4.2},
			{0.70, -4.7},
			{0.80, -6.0},
			{0.90, -7.5},
			{1.00, -9.0},
		},
		floor: 1e-12,
		ceil:  0.3,
	}
}

// NewCustomBER builds a BER model from caller-provided (vdd, ber) points.
// Points are sorted by voltage; BER values must be strictly positive and
// non-increasing in voltage.
func NewCustomBER(points map[float64]float64) (*WangCalhounBER, error) {
	if len(points) < 2 {
		return nil, fmt.Errorf("sram: custom BER model needs at least 2 points, got %d", len(points))
	}
	m := &WangCalhounBER{floor: 1e-12, ceil: 0.3}
	for v, p := range points {
		if p <= 0 || p >= 1 {
			return nil, fmt.Errorf("sram: BER %v at %v V out of (0,1)", p, v)
		}
		m.anchors = append(m.anchors, anchor{vdd: v, logP: math.Log10(p)})
	}
	sort.Slice(m.anchors, func(i, j int) bool { return m.anchors[i].vdd < m.anchors[j].vdd })
	for i := 1; i < len(m.anchors); i++ {
		if m.anchors[i].logP > m.anchors[i-1].logP {
			return nil, fmt.Errorf("sram: BER must be non-increasing in VDD (violated between %v V and %v V)",
				m.anchors[i-1].vdd, m.anchors[i].vdd)
		}
		if m.anchors[i].vdd == m.anchors[i-1].vdd {
			return nil, fmt.Errorf("sram: duplicate BER anchor at %v V", m.anchors[i].vdd)
		}
	}
	return m, nil
}

// BER returns the per-bit fault probability at the given supply voltage,
// interpolating linearly in log10 space between anchors and extrapolating
// with the edge segments' slopes. The result is clamped to
// [floor, ceil] ⊂ (0, 1).
func (m *WangCalhounBER) BER(vdd float64) float64 {
	a := m.anchors
	n := len(a)
	var logP float64
	switch {
	case vdd <= a[0].vdd:
		slope := (a[1].logP - a[0].logP) / (a[1].vdd - a[0].vdd)
		logP = a[0].logP + slope*(vdd-a[0].vdd)
	case vdd >= a[n-1].vdd:
		slope := (a[n-1].logP - a[n-2].logP) / (a[n-1].vdd - a[n-2].vdd)
		logP = a[n-1].logP + slope*(vdd-a[n-1].vdd)
	default:
		// Binary search for the bracketing segment.
		i := sort.Search(n, func(i int) bool { return a[i].vdd >= vdd })
		lo, hi := a[i-1], a[i]
		frac := (vdd - lo.vdd) / (hi.vdd - lo.vdd)
		logP = lo.logP + frac*(hi.logP-lo.logP)
	}
	p := math.Pow(10, logP)
	if p < m.floor {
		p = m.floor
	}
	if p > m.ceil {
		p = m.ceil
	}
	return p
}

// VminFromUniform converts a uniform(0,1) draw u into a per-cell minimum
// operating voltage consistent with the BER model: the cell with quantile
// u is faulty exactly at voltages where BER(v) > u, i.e. its Vmin is the
// smallest voltage with BER(v) <= u. The inversion is done by bisection
// over [lo, hi].
//
// Sampling every cell's Vmin this way makes the population fault rate at
// any voltage v equal BER(v) in expectation, while giving each individual
// cell a single threshold — exactly the fault-inclusion behaviour the
// paper observed on silicon.
func (m *WangCalhounBER) VminFromUniform(u, lo, hi float64) float64 {
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	// If even the highest voltage has BER > u the cell is always faulty.
	if m.BER(hi) > u {
		return math.Inf(1)
	}
	// If the lowest voltage is already reliable, Vmin is below the range.
	if m.BER(lo) <= u {
		return lo
	}
	for i := 0; i < 64; i++ {
		mid := (lo + hi) / 2
		if m.BER(mid) > u {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}
