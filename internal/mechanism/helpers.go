package mechanism

import (
	"math"

	"repro/internal/cacti"
	"repro/internal/device"
)

// powInt is math.Pow for small positive integer exponents.
func powInt(x float64, n int) float64 {
	return math.Pow(x, float64(n))
}

// expLog1p returns (1+x)^n computed in log space (x near 0, n large).
func expLog1p(n int, x float64) float64 {
	return math.Exp(float64(n) * math.Log1p(x))
}

// dataCellLeakW returns the leakage of `cells` RVT-equivalent data
// cells at the given voltage, using cm's calibration.
func dataCellLeakW(cm *cacti.Model, vdd, cells float64) float64 {
	return cells * cm.Params.CellLeakEquiv * cm.Tech.LeakagePower(device.RVT, vdd)
}

// nominalFloorW returns the shared always-on floor every scheme pays in
// the Fig. 3a component model: data periphery plus the tag array, both
// at nominal VDD.
func nominalFloorW(cm *cacti.Model) float64 {
	base := cm.StaticPower(cm.Tech.VDDNom, 1)
	return base.DataPeripheryW + base.TagW
}
