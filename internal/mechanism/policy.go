package mechanism

import (
	"strings"
	"sync"

	"repro/internal/core"
)

// Policy is one power/capacity scaling policy: how (not whether) a
// PCS-capable cache moves between its voltage levels at run time. The
// spec layer's mode names resolve through this registry, so policy and
// mechanism selection share one plugin surface.
type Policy interface {
	// Name is the registry key (lowercase).
	Name() string
	// Mode is the simulator mode the policy drives.
	Mode() core.Mode
	// Summary is a one-line description.
	Summary() string
}

type policyEntry struct {
	name    string
	mode    core.Mode
	summary string
}

func (p policyEntry) Name() string    { return p.name }
func (p policyEntry) Mode() core.Mode { return p.mode }
func (p policyEntry) Summary() string { return p.summary }

var (
	polMu     sync.RWMutex
	policies  []Policy
	polByName = map[string]Policy{}
)

// RegisterPolicy adds a scaling policy; names are matched
// case-insensitively by PolicyByName.
func RegisterPolicy(name string, mode core.Mode, summary string) {
	polMu.Lock()
	defer polMu.Unlock()
	key := strings.ToLower(name)
	if _, dup := polByName[key]; dup {
		panic("mechanism: policy " + name + " already registered")
	}
	p := policyEntry{name: key, mode: mode, summary: summary}
	policies = append(policies, p)
	polByName[key] = p
}

// Policies returns every registered policy in registration order.
func Policies() []Policy {
	polMu.RLock()
	defer polMu.RUnlock()
	out := make([]Policy, len(policies))
	copy(out, policies)
	return out
}

// PolicyByName resolves a policy name, case-insensitively.
func PolicyByName(name string) (Policy, bool) {
	polMu.RLock()
	defer polMu.RUnlock()
	p, ok := polByName[strings.ToLower(strings.TrimSpace(name))]
	return p, ok
}

func init() {
	RegisterPolicy("baseline", core.Baseline,
		"no scaling: the cache stays at nominal VDD")
	RegisterPolicy("spcs", core.SPCS,
		"static PCS: drop once to the 99%-capacity voltage (VDD2)")
	RegisterPolicy("dpcs", core.DPCS,
		"dynamic PCS: sample miss rates and move across VDD levels at run time")
}
