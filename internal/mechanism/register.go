package mechanism

// The standard registry: the paper's Fig. 3 comparison set (Default)
// plus the TS-Cache and L2C2 competitors. Rank encodes the paper's
// presentation order — yield/summary tables list rank-ascending
// (Conventional … Proposed), capacity/power tables rank-descending
// (Proposed first). Versions participate in content-addressed cache
// keys (resultstore): bump a Version whenever that model's numbers
// change.
func init() {
	MustRegister(Descriptor{
		Name: "conventional", Label: "Conventional", ShortLabel: "Conv",
		Version: "1", Rank: 10, Default: true, Yields: true,
		Summary: "no fault tolerance: one faulty cell kills the cache",
		New:     newConventional,
	})
	MustRegister(Descriptor{
		Name: "secded", Label: "SECDED", ShortLabel: "SECDED",
		Version: "1", Rank: 20, Default: true, Yields: true,
		Summary: "SECDED ECC per 2-byte subblock (1 correctable bit)",
		New:     newSECDED,
	})
	MustRegister(Descriptor{
		Name: "dected", Label: "DECTED", ShortLabel: "DECTED",
		Version: "1", Rank: 30, Default: true, Yields: true,
		Summary: "DECTED ECC per 2-byte subblock (2 correctable bits)",
		New:     newDECTED,
	})
	MustRegister(Descriptor{
		Name: "waygate", Label: "Way gating", ShortLabel: "WayGate",
		Version: "1", Rank: 40, Default: true, Steps: true,
		Summary: "gate whole ways at nominal VDD (linear power/capacity)",
		New:     newWayGate,
	})
	MustRegister(Descriptor{
		Name: "fftcache", Label: "FFT-Cache", ShortLabel: "FFT",
		Version: "1", Rank: 50, Default: true, Scales: true, Yields: true,
		Summary: "remap faulty subblocks onto sacrificial blocks (CASES'11)",
		New:     newFFTCache,
	})
	MustRegister(Descriptor{
		Name: "tscache", Label: "TS-Cache", ShortLabel: "TS",
		Version: "1", Rank: 60, Scales: true, Yields: true,
		Summary: "timing speculation + replay; only hard faults cost capacity",
		New:     newTSCache,
	})
	MustRegister(Descriptor{
		Name: "l2c2", Label: "L2C2", ShortLabel: "L2C2",
		Version: "1", Rank: 70, Scales: true, Yields: true,
		Summary: "salvage faulty blocks by compressing lines into fault-free subblocks",
		New:     newL2C2,
	})
	MustRegister(Descriptor{
		Name: "proposed", Label: "Proposed", ShortLabel: "Proposed",
		Version: "1", Rank: 100, Default: true, Scales: true, Yields: true,
		Summary: "the paper's PCS scheme: gate faulty blocks, compressed fault map",
		New:     newProposed,
	})
}
