package mechanism

import (
	"fmt"

	"repro/internal/cacti"
	"repro/internal/ecc"
	"repro/internal/faultmodel"
	"repro/internal/fftcache"
	"repro/internal/waygate"
)

// This file adapts the pre-existing competitor models (and the paper's
// proposed scheme) to the Mechanism interface. The adapters are pure
// delegation: every number they return is computed by exactly the call
// path the hard-wired Fig. 3 code used before the registry existed,
// which the differential test pins (adapter == direct model, float for
// float), keeping the golden tables byte-identical.

// --- proposed: the paper's PCS scheme (faultmodel + cacti WithPCS) ---

type proposedMech struct{ s Setup }

func newProposed(s Setup) (Mechanism, error) { return &proposedMech{s: s}, nil }

func (m *proposedMech) Name() string  { return "proposed" }
func (m *proposedMech) Label() string { return "Proposed" }

func (m *proposedMech) Yield(vdd float64) float64 { return m.s.FM.Yield(vdd) }

func (m *proposedMech) EffectiveCapacity(vdd float64) float64 {
	return m.s.FM.ExpectedCapacity(vdd)
}

// StaticPower gates faulty blocks as capacity shrinks; the fault-map
// and power-gate overheads live in the setup's CMPCS model, so the cm
// argument (the shared baseline) is unused here.
func (m *proposedMech) StaticPower(_ *cacti.Model, vdd float64) float64 {
	return m.s.CMPCS.StaticPower(vdd, m.s.FM.ExpectedCapacity(vdd)).TotalW
}

func (m *proposedMech) MinVDDForYield(target, lo, hi float64) (float64, bool) {
	return m.s.FM.MinVDDForYield(target, lo, hi)
}

func (m *proposedMech) AreaOverhead() AreaOverhead {
	a := m.s.CMPCS.Area()
	return AreaOverhead{
		Fraction: a.OverheadFraction(),
		Detail: fmt.Sprintf("fault map %.4f mm² + power gates %.4f mm² (Sec. 4.2)",
			a.FaultMapMM2, a.PowerGateMM2),
	}
}

// --- fftcache: FFT-Cache remapping (BanaiyanMofrad et al.) ---

type fftMech struct {
	s Setup
	m *fftcache.Model
}

func newFFTCache(s Setup) (Mechanism, error) {
	return &fftMech{s: s, m: fftcache.New(s.FM.Geom, s.BER, fftcache.DefaultParams(), s.NLowVDDs)}, nil
}

func (a *fftMech) Name() string  { return "fftcache" }
func (a *fftMech) Label() string { return "FFT-Cache" }

func (a *fftMech) Yield(vdd float64) float64             { return a.m.Yield(vdd) }
func (a *fftMech) EffectiveCapacity(vdd float64) float64 { return a.m.EffectiveCapacity(vdd) }

func (a *fftMech) StaticPower(cm *cacti.Model, vdd float64) float64 {
	return a.m.StaticPower(cm, vdd)
}

func (a *fftMech) MinVDDForYield(target, lo, hi float64) (float64, bool) {
	return a.m.MinVDDForYield(target, lo, hi)
}

func (a *fftMech) AreaOverhead() AreaOverhead {
	// Published: 13 % for one low voltage. Roughly 60 % of that is the
	// per-subblock fault map, which FFT-Cache duplicates in full for
	// every additional low-voltage level (no fault-inclusion
	// compression).
	p := a.m.Params
	frac := p.AreaOverhead * (1 + 0.6*float64(a.m.ExtraVDDLevels))
	return AreaOverhead{
		Fraction: frac,
		Detail: fmt.Sprintf("per-subblock fault map + remapping logic, %d full map(s)",
			1+a.m.ExtraVDDLevels),
	}
}

// --- waygate: way-granularity power gating at nominal VDD ---

type waygateMech struct {
	s Setup
	m *waygate.Model
}

func newWayGate(s Setup) (Mechanism, error) {
	return &waygateMech{s: s, m: waygate.New(s.CM)}, nil
}

func (a *waygateMech) Name() string  { return "waygate" }
func (a *waygateMech) Label() string { return "Way gating" }

// Yield is 1 at any configuration: the array never leaves nominal VDD,
// so it is never exposed to low-voltage faults.
func (a *waygateMech) Yield(float64) float64 { return 1 }

// EffectiveCapacity is 1 in the voltage view: capacity is traded by
// gating ways (see PowerCapacityCurve), not by scaling VDD.
func (a *waygateMech) EffectiveCapacity(float64) float64 { return 1 }

func (a *waygateMech) StaticPower(_ *cacti.Model, _ float64) float64 {
	return a.m.StaticPower(a.s.Org.Assoc)
}

// MinVDDForYield: the scheme only operates at nominal VDD.
func (a *waygateMech) MinVDDForYield(_, lo, hi float64) (float64, bool) {
	nom := a.s.Tech.VDDNom
	if lo <= nom && nom <= hi {
		return nom, true
	}
	return 0, false
}

func (a *waygateMech) AreaOverhead() AreaOverhead {
	return AreaOverhead{
		Fraction: 0.01,
		Detail:   "per-way sleep transistors + way-select control (Gated-Vdd-style)",
	}
}

func (a *waygateMech) PowerCapacityCurve() (caps, watts []float64) {
	return a.m.PowerCapacityCurve()
}

// --- conventional / SECDED / DECTED: ECC yield models ---

type eccMech struct {
	s           Setup
	m           ecc.YieldModel
	name, label string
}

func newConventional(s Setup) (Mechanism, error) {
	return &eccMech{s: s, m: ecc.NewConventional(s.BER, s.FM.Geom), name: "conventional", label: "Conventional"}, nil
}

func newSECDED(s Setup) (Mechanism, error) {
	return &eccMech{s: s, m: ecc.NewSECDED(s.BER, s.FM.Geom), name: "secded", label: "SECDED"}, nil
}

func newDECTED(s Setup) (Mechanism, error) {
	return &eccMech{s: s, m: ecc.NewDECTED(s.BER, s.FM.Geom), name: "dected", label: "DECTED"}, nil
}

func (a *eccMech) Name() string  { return a.name }
func (a *eccMech) Label() string { return a.label }

func (a *eccMech) Yield(vdd float64) float64 { return a.m.Yield(vdd) }

// EffectiveCapacity is 1 wherever the scheme yields: ECC corrects in
// place, so no blocks are lost while every codeword stays correctable
// (and below its min-VDD the cache is not operated at all).
func (a *eccMech) EffectiveCapacity(float64) float64 { return 1 }

// StaticPower scales the data array (payload + check bits, which live
// in the same voltage-scaled array) with VDD over the shared
// periphery/tag floor.
func (a *eccMech) StaticPower(cm *cacti.Model, vdd float64) float64 {
	cells := float64(a.m.Geom.Blocks()*a.m.Geom.BlockBits) * (1 + a.m.StorageOverhead())
	return dataCellLeakW(cm, vdd, cells) + nominalFloorW(cm)
}

func (a *eccMech) MinVDDForYield(target, lo, hi float64) (float64, bool) {
	return a.m.MinVDD(target, lo, hi)
}

// AreaOverhead charges the check-bit storage against the data array's
// share of the baseline area (logic is second-order next to storage).
func (a *eccMech) AreaOverhead() AreaOverhead {
	so := a.m.StorageOverhead()
	if so == 0 {
		return AreaOverhead{Fraction: 0, Detail: "no fault tolerance"}
	}
	ar := a.s.CM.Area()
	frac := so * ar.DataMM2 / (ar.DataMM2 + ar.TagMM2)
	return AreaOverhead{
		Fraction: frac,
		Detail: fmt.Sprintf("%d check bits per %d-bit subblock stored in-array",
			a.m.CodewordBits-a.m.SubblockDataBits, a.m.SubblockDataBits),
	}
}

// blockFailFromBER is shared by the new-mechanism models: probability a
// block holds at least one (unrecoverable) faulty bit at the given BER.
func blockFailFromBER(ber float64, blockBits int) float64 {
	return faultmodel.PFailBits(ber, blockBits)
}
