package mechanism

import (
	"fmt"

	"repro/internal/cacti"
	"repro/internal/faultmodel"
	"repro/internal/report"
)

// L2C2 (Escuin et al., "L2C2: Last-level compressed-contents non-volatile
// cache", PAPERS.md, applied here to low-voltage SRAM salvaging)
// recovers capacity from faulty blocks by compression: a block with
// faulty subblocks still stores a whole cache line if the line
// compresses into the block's fault-free subblocks. Where the proposed
// PCS scheme writes a faulty block off entirely, L2C2 salvages the
// fraction of faulty blocks whose resident lines compress enough.
//
// Model, on the shared per-bit BER(v) with S-bit salvage subblocks:
//
//	q_sb(v)   = PFailBits(BER(v), SubblockBits)     faulty-subblock prob
//	free(v)   = 1 - q_sb(v)                         usable subblock frac
//	P_salv(v) = c · P(ratio <= free(v))             salvage probability
//	p_lost(v) = pBlock(v) · (1 - P_salv(v))         truly lost blocks
//
// with compression ratio ~ Uniform[RatioMin, RatioMax] over the
// compressible fraction c of lines (a BDI/FPC-style compressibility
// profile). Capacity is 1 - p_lost; a set only fails when every way is
// lost; lost blocks are gated PCS-style, salvaged ones stay powered.

// L2C2Params calibrates the compressed-salvaging model.
type L2C2Params struct {
	// SubblockBits is the fault-tracking and salvage granularity.
	SubblockBits int
	// RatioMin/RatioMax bound the compressed-size distribution: a line
	// compresses to Uniform[RatioMin, RatioMax] of its original size.
	RatioMin, RatioMax float64
	// CompressibleFrac is the fraction of lines that compress at all.
	CompressibleFrac float64
	// LogicPowerNomFrac is the static power of the compressor/
	// decompressor and per-subblock fault metadata, always at nominal
	// VDD, as a fraction of the nominal data-array cell power.
	LogicPowerNomFrac float64
	// AreaOverheadFrac is the compression logic + metadata silicon cost.
	AreaOverheadFrac float64
	// DecompressCycles is the extra read latency of a salvaged block.
	DecompressCycles float64
}

// DefaultL2C2Params returns the calibration used by the registry entry.
func DefaultL2C2Params() L2C2Params {
	return L2C2Params{
		SubblockBits:      64,
		RatioMin:          0.25,
		RatioMax:          1.00,
		CompressibleFrac:  0.90,
		LogicPowerNomFrac: 0.05,
		AreaOverheadFrac:  0.045,
		DecompressCycles:  2,
	}
}

type l2c2Mech struct {
	s Setup
	p L2C2Params
}

func newL2C2(s Setup) (Mechanism, error) {
	return &l2c2Mech{s: s, p: DefaultL2C2Params()}, nil
}

func (m *l2c2Mech) Name() string  { return "l2c2" }
func (m *l2c2Mech) Label() string { return "L2C2" }

// pBlockFaulty is the probability a block holds >= 1 faulty bit.
func (m *l2c2Mech) pBlockFaulty(vdd float64) float64 {
	return blockFailFromBER(m.s.BER.BER(vdd), m.s.FM.Geom.BlockBits)
}

// SalvageProb returns the probability a faulty block is salvaged: its
// resident line compresses into the expected fault-free subblock
// fraction.
func (m *l2c2Mech) SalvageProb(vdd float64) float64 {
	qSb := faultmodel.PFailBits(m.s.BER.BER(vdd), m.p.SubblockBits)
	free := 1 - qSb
	fit := (free - m.p.RatioMin) / (m.p.RatioMax - m.p.RatioMin)
	if fit < 0 {
		fit = 0
	}
	if fit > 1 {
		fit = 1
	}
	return m.p.CompressibleFrac * fit
}

// pBlockLost is the probability a block is faulty and not salvageable.
func (m *l2c2Mech) pBlockLost(vdd float64) float64 {
	return m.pBlockFaulty(vdd) * (1 - m.SalvageProb(vdd))
}

func (m *l2c2Mech) Yield(vdd float64) float64 {
	return gridYieldFromBlockFail(m.pBlockLost(vdd), m.s.FM.Geom.Ways, m.s.FM.Geom.Sets)
}

func (m *l2c2Mech) EffectiveCapacity(vdd float64) float64 {
	return 1 - m.pBlockLost(vdd)
}

// StaticPower: lost blocks are gated PCS-style (the CMPCS component
// model charges fault metadata and gates); salvaged blocks stay
// powered holding compressed lines; the compressor runs at nominal.
func (m *l2c2Mech) StaticPower(cm *cacti.Model, vdd float64) float64 {
	arr := m.s.CMPCS.StaticPower(vdd, m.EffectiveCapacity(vdd)).TotalW
	nomCells := float64(m.s.FM.Geom.Blocks() * m.s.FM.Geom.BlockBits)
	return arr + m.p.LogicPowerNomFrac*dataCellLeakW(cm, cm.Tech.VDDNom, nomCells)
}

func (m *l2c2Mech) MinVDDForYield(target, lo, hi float64) (float64, bool) {
	for _, v := range faultmodel.Grid(lo, hi) {
		if m.Yield(v) >= target {
			return v, true
		}
	}
	return 0, false
}

func (m *l2c2Mech) AreaOverhead() AreaOverhead {
	return AreaOverhead{
		Fraction: m.p.AreaOverheadFrac,
		Detail:   "compressor/decompressor + per-subblock fault metadata",
	}
}

// Tables renders the scheme-specific salvage study per voltage.
func (m *l2c2Mech) Tables(lo, hi float64) []*report.Table {
	t := report.NewTable(
		fmt.Sprintf("L2C2 compressed-block salvaging (%s): recovered capacity vs VDD", m.s.Org.Name),
		"VDD (V)", "Block-fault prob", "Salvage prob", "Capacity", "Yield")
	for _, v := range faultmodel.Grid(lo, hi) {
		t.AddRow(fmt.Sprintf("%.2f", v),
			fmt.Sprintf("%.4f", m.pBlockFaulty(v)),
			fmt.Sprintf("%.4f", m.SalvageProb(v)),
			fmt.Sprintf("%.4f", m.EffectiveCapacity(v)),
			fmt.Sprintf("%.4f", m.Yield(v)))
	}
	return []*report.Table{t}
}
