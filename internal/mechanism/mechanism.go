// Package mechanism is the plugin layer for fault-tolerant
// voltage-scaling mechanisms: the paper's proposed PCS scheme and every
// competitor it is compared against (Fig. 3, the min-VDD and area
// tables) behind one small interface, discovered through an ordered
// registry. The analytical studies in internal/expers iterate the
// registry instead of naming schemes, so adding a competitor is one
// Register call — the comparison tables, min-VDD rows, area rows, CLI
// selection (-mechanisms) and spec validation all pick it up.
//
// The registry also carries the scaling policies (baseline/SPCS/DPCS)
// behind the Policy interface, so spec-level mode names resolve through
// the same layer.
package mechanism

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/cacti"
	"repro/internal/device"
	"repro/internal/faultmodel"
	"repro/internal/report"
	"repro/internal/sram"
)

// Setup bundles the shared model stack for one cache organisation — the
// same stack expers.CacheSetup carries, duplicated here (value form) so
// this package does not import expers. Adapters capture from it
// whatever their scheme needs.
type Setup struct {
	Org  cacti.Org
	Tech device.Tech
	// CM is the baseline cacti model (no PCS overheads); CMPCS carries
	// the fault map + power gates sized for NLowVDDs low levels.
	CM    *cacti.Model
	CMPCS *cacti.Model
	BER   sram.BERModel
	FM    *faultmodel.Model
	// NLowVDDs is the number of low-voltage levels the mechanism must
	// support (2 reproduces the paper's three-level comparison); map-
	// carrying schemes pay per level.
	NLowVDDs int
}

// NewSetup builds the model stack for an organisation with nLowVDDs low
// voltage levels, mirroring expers.NewCacheSetup (which memoizes; this
// constructor is for direct/test use).
func NewSetup(org cacti.Org, nLowVDDs int) (Setup, error) {
	tech := device.Tech45SOI()
	cm, err := cacti.New(org, tech, cacti.DefaultParams())
	if err != nil {
		return Setup{}, err
	}
	ber := sram.NewWangCalhounBER()
	fm, err := faultmodel.New(faultmodel.Geometry{
		Sets: org.Sets(), Ways: org.Assoc, BlockBits: org.BlockBits(),
	}, ber)
	if err != nil {
		return Setup{}, err
	}
	fmBits := 0
	for 1<<fmBits < nLowVDDs+2 {
		fmBits++
	}
	return Setup{
		Org: org, Tech: tech,
		CM: cm, CMPCS: cm.WithPCS(fmBits),
		BER: ber, FM: fm,
		NLowVDDs: nLowVDDs,
	}, nil
}

// Digest is the canonical value identity of a setup: two setups built
// from equal organisations and level counts digest identically however
// they were constructed. Memo layers key on this instead of pointer
// identity.
func (s Setup) Digest() string {
	return fmt.Sprintf("%s/%dB/%dw/%dB/a%d/serial=%t/nlow=%d",
		s.Org.Name, s.Org.SizeBytes, s.Org.Assoc, s.Org.BlockBytes,
		s.Org.AddrBits, s.Org.SerialTagData, s.NLowVDDs)
}

// AreaOverhead is a mechanism's silicon cost relative to the baseline
// (data + tag) array area.
type AreaOverhead struct {
	// Fraction is the added area as a fraction of the baseline array.
	Fraction float64
	// Detail names what the overhead pays for.
	Detail string
}

// Mechanism is one fault-tolerant voltage-scaling scheme evaluated
// analytically on a fixed cache setup.
type Mechanism interface {
	// Name is the registry key (lowercase, stable).
	Name() string
	// Label is the display name used in table columns and rows.
	Label() string
	// Yield returns the probability the whole cache is functional at
	// the given data-array voltage.
	Yield(vdd float64) float64
	// EffectiveCapacity returns the expected usable-block fraction at
	// the given voltage.
	EffectiveCapacity(vdd float64) float64
	// StaticPower returns total static power (W) at the given voltage,
	// using cm — the setup's baseline cacti model — for the shared
	// component model; schemes with their own overhead model (e.g. the
	// PCS fault map) consult the setup's models instead.
	StaticPower(cm *cacti.Model, vdd float64) float64
	// MinVDDForYield returns the lowest grid voltage in [lo, hi]
	// meeting the yield target, or ok=false.
	MinVDDForYield(target, lo, hi float64) (float64, bool)
	// AreaOverhead reports the mechanism's silicon cost.
	AreaOverhead() AreaOverhead
}

// StepCurver is implemented by mechanisms whose power/capacity
// trade-off steps through discrete configurations at nominal voltage
// (way gating) rather than tracking VDD; Fig. 3a plots the step curve
// alongside the voltage-scaling curves.
type StepCurver interface {
	PowerCapacityCurve() (caps, watts []float64)
}

// Tabler is implemented by mechanisms with scheme-specific analytical
// tables beyond the shared Fig. 3 comparisons (e.g. TS-Cache's replay
// penalty, L2C2's salvage probability), rendered over [lo, hi] volts.
type Tabler interface {
	Tables(lo, hi float64) []*report.Table
}

// Descriptor registers one mechanism: identity, presentation, which
// comparison surfaces it appears on, and its constructor.
type Descriptor struct {
	// Name is the registry key ("fftcache", "tscache", ...).
	Name string
	// Label is the row/column display name ("FFT-Cache").
	Label string
	// ShortLabel is the compact column prefix for paired-column tables
	// (Fig. 3a's "FFT cap"/"FFT mW").
	ShortLabel string
	// Version participates in content-addressed cache keys for
	// mechanism-parameterised cells; bump it whenever the model's
	// output changes so stale cached cells miss.
	Version string
	// Rank orders the registry. Capacity/power comparisons list
	// mechanisms rank-descending (strongest first, the paper's column
	// order); yield and summary tables list rank-ascending (weakest
	// first, the paper's row order).
	Rank int
	// Default marks the paper's Fig. 3 comparison set.
	Default bool
	// Scales: the scheme trades capacity/power against VDD, so it has
	// per-voltage curves (Fig. 3a/3b columns).
	Scales bool
	// Yields: the scheme has a meaningful yield-vs-VDD curve and a
	// min-VDD entry (Fig. 3d columns, min-VDD rows).
	Yields bool
	// Steps: the scheme has a discrete nominal-voltage trade-off curve
	// (Fig. 3a's way-gating line).
	Steps bool
	// Summary is the one-line description for -list-mechanisms.
	Summary string
	// New builds the mechanism on a setup.
	New func(Setup) (Mechanism, error)
}

var (
	regMu     sync.RWMutex
	registry  []Descriptor
	regByName = map[string]Descriptor{}
)

// Register adds a mechanism to the registry, kept ordered by Rank (ties
// by registration order). Names must be unique.
func Register(d Descriptor) error {
	if d.Name == "" || d.Label == "" || d.New == nil {
		return fmt.Errorf("mechanism: descriptor needs name, label and constructor")
	}
	if d.ShortLabel == "" {
		d.ShortLabel = d.Label
	}
	if d.Version == "" {
		d.Version = "1"
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := regByName[d.Name]; dup {
		return fmt.Errorf("mechanism: %q already registered", d.Name)
	}
	i := sort.Search(len(registry), func(i int) bool { return registry[i].Rank > d.Rank })
	registry = append(registry, Descriptor{})
	copy(registry[i+1:], registry[i:])
	registry[i] = d
	regByName[d.Name] = d
	return nil
}

// MustRegister is Register, panicking on error (init-time use).
func MustRegister(d Descriptor) {
	if err := Register(d); err != nil {
		panic(err)
	}
}

// All returns every registered mechanism in rank order.
func All() []Descriptor {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Descriptor, len(registry))
	copy(out, registry)
	return out
}

// ByName looks a mechanism up by its registry key.
func ByName(name string) (Descriptor, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	d, ok := regByName[name]
	return d, ok
}

// Names returns every registered name in rank order.
func Names() []string {
	all := All()
	out := make([]string, len(all))
	for i, d := range all {
		out[i] = d.Name
	}
	return out
}

// DefaultNames returns the paper's comparison set in rank order.
func DefaultNames() []string {
	var out []string
	for _, d := range All() {
		if d.Default {
			out = append(out, d.Name)
		}
	}
	return out
}

// Resolve maps a selection of names to descriptors in rank order. A nil
// or empty selection means the default (paper) set. Unknown or
// duplicated names are errors; whitespace around names is ignored.
func Resolve(names []string) ([]Descriptor, error) {
	if len(names) == 0 {
		names = DefaultNames()
	}
	seen := make(map[string]bool, len(names))
	for _, raw := range names {
		name := strings.TrimSpace(raw)
		if name == "" {
			return nil, fmt.Errorf("mechanism: empty mechanism name in selection")
		}
		if _, ok := ByName(name); !ok {
			return nil, fmt.Errorf("mechanism: unknown mechanism %q (known: %v)", name, Names())
		}
		if seen[name] {
			return nil, fmt.Errorf("mechanism: mechanism %q listed twice", name)
		}
		seen[name] = true
	}
	var out []Descriptor
	for _, d := range All() {
		if seen[d.Name] {
			out = append(out, d)
		}
	}
	return out, nil
}

// gridYieldFromBlockFail folds a per-block failure probability into a
// whole-cache yield with the paper's set model: a set is dysfunctional
// when all effWays candidate blocks fail, the cache when any set is.
func gridYieldFromBlockFail(pBlockFail float64, effWays, sets int) float64 {
	if pBlockFail <= 0 {
		return 1
	}
	if pBlockFail >= 1 {
		return 0
	}
	pSetFail := powInt(pBlockFail, effWays)
	if pSetFail >= 1 {
		return 0
	}
	return expLog1p(sets, -pSetFail)
}
