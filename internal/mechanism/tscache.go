package mechanism

import (
	"fmt"

	"repro/internal/cacti"
	"repro/internal/faultmodel"
	"repro/internal/report"
)

// TS-Cache (Shen et al., "TS Cache: a fast cache with timing-speculation
// mechanism under low supply voltages", PAPERS.md) observes that most
// low-voltage SRAM failures are *timing* faults — the cell still holds
// its value but resolves too slowly for the nominal access cycle — and
// only a minority are hard retention faults. Instead of disabling or
// repairing every faulty cell, TS-Cache speculates on single-cycle
// timing, detects mis-speculation with error-detecting sense logic, and
// replays the access with an extended (two-cycle) timing window. Only
// hard faults (plus the residue that stays faulty even with the longer
// window) cost capacity; the rest cost latency.
//
// Model, on the shared per-bit BER(v):
//
//	ber_hard(v)  = h·BER(v) + (1-h)·BER(v+Δ)     unrecoverable bits
//	ber_slow(v)  = (1-h)·(BER(v) - BER(v+Δ))     replay-recoverable bits
//
// where h = HardFraction and Δ = MarginV, the timing margin a replayed
// access buys expressed as an equivalent VDD uplift. Blocks with a hard
// bit are disabled PCS-style (fault map + gates: the setup's CMPCS
// component model), so
//
//	capacity(v) = 1 - PFailBits(ber_hard(v), blockBits)
//	yield(v)    = (1 - pBlock(v)^ways)^sets
//	penalty(v)  = PFailBits(ber_slow(v), blockBits) · ReplayCycles
//
// and static power adds always-nominal detector/replay logic on top of
// the voltage-scaled, capacity-gated array.

// TSParams calibrates the TS-Cache model.
type TSParams struct {
	// HardFraction is the fraction of low-voltage bit failures that are
	// hard (retention/write) faults rather than recoverable timing
	// faults. TS-Cache's premise is that timing faults dominate.
	HardFraction float64
	// MarginV is the equivalent VDD uplift of the extended two-cycle
	// timing window: a bit failing at v but passing at v+MarginV is
	// recoverable by replay.
	MarginV float64
	// ReplayCycles is the extra access latency of one replayed access.
	ReplayCycles float64
	// DetectorPowerNomFrac is the static power of the error-detecting
	// sense amplifiers and replay control, always at nominal VDD, as a
	// fraction of the nominal data-array cell power.
	DetectorPowerNomFrac float64
	// AreaOverheadFrac is the detector + replay-control silicon cost.
	AreaOverheadFrac float64
}

// DefaultTSParams returns the calibration used by the registry entry.
func DefaultTSParams() TSParams {
	return TSParams{
		HardFraction:         0.30,
		MarginV:              0.08,
		ReplayCycles:         1,
		DetectorPowerNomFrac: 0.03,
		AreaOverheadFrac:     0.04,
	}
}

type tsCacheMech struct {
	s Setup
	p TSParams
}

func newTSCache(s Setup) (Mechanism, error) {
	return &tsCacheMech{s: s, p: DefaultTSParams()}, nil
}

func (m *tsCacheMech) Name() string  { return "tscache" }
func (m *tsCacheMech) Label() string { return "TS-Cache" }

// hardBER is the per-bit rate of faults replay cannot recover.
func (m *tsCacheMech) hardBER(vdd float64) float64 {
	b := m.s.BER.BER(vdd)
	bm := m.s.BER.BER(vdd + m.p.MarginV)
	return m.p.HardFraction*b + (1-m.p.HardFraction)*bm
}

// slowBER is the per-bit rate of replay-recoverable timing faults.
func (m *tsCacheMech) slowBER(vdd float64) float64 {
	b := m.s.BER.BER(vdd)
	bm := m.s.BER.BER(vdd + m.p.MarginV)
	s := (1 - m.p.HardFraction) * (b - bm)
	if s < 0 {
		return 0
	}
	return s
}

func (m *tsCacheMech) pBlockHard(vdd float64) float64 {
	return blockFailFromBER(m.hardBER(vdd), m.s.FM.Geom.BlockBits)
}

func (m *tsCacheMech) Yield(vdd float64) float64 {
	return gridYieldFromBlockFail(m.pBlockHard(vdd), m.s.FM.Geom.Ways, m.s.FM.Geom.Sets)
}

func (m *tsCacheMech) EffectiveCapacity(vdd float64) float64 {
	return 1 - m.pBlockHard(vdd)
}

// StaticPower: hard-faulty blocks are gated exactly as in the proposed
// scheme (the CMPCS component model charges the fault map and gates),
// plus the always-nominal detector/replay logic.
func (m *tsCacheMech) StaticPower(cm *cacti.Model, vdd float64) float64 {
	arr := m.s.CMPCS.StaticPower(vdd, m.EffectiveCapacity(vdd)).TotalW
	nomCells := float64(m.s.FM.Geom.Blocks() * m.s.FM.Geom.BlockBits)
	return arr + m.p.DetectorPowerNomFrac*dataCellLeakW(cm, cm.Tech.VDDNom, nomCells)
}

func (m *tsCacheMech) MinVDDForYield(target, lo, hi float64) (float64, bool) {
	for _, v := range faultmodel.Grid(lo, hi) {
		if m.Yield(v) >= target {
			return v, true
		}
	}
	return 0, false
}

func (m *tsCacheMech) AreaOverhead() AreaOverhead {
	return AreaOverhead{
		Fraction: m.p.AreaOverheadFrac,
		Detail:   "error-detecting sense logic + replay control (always-nominal)",
	}
}

// LatencyPenalty returns the expected extra cycles per block access
// from timing-speculation replays at the given voltage.
func (m *tsCacheMech) LatencyPenalty(vdd float64) float64 {
	pSlow := blockFailFromBER(m.slowBER(vdd), m.s.FM.Geom.BlockBits)
	return pSlow * m.p.ReplayCycles
}

// Tables renders the scheme-specific latency-penalty study: how much
// capacity survives as hard faults only, and what the speculation costs
// in replays, per voltage.
func (m *tsCacheMech) Tables(lo, hi float64) []*report.Table {
	t := report.NewTable(
		fmt.Sprintf("TS-Cache timing speculation (%s): replay penalty vs VDD", m.s.Org.Name),
		"VDD (V)", "Slow-access frac", "Replay cycles/access", "Hard-fault capacity", "Yield")
	for _, v := range faultmodel.Grid(lo, hi) {
		pSlow := blockFailFromBER(m.slowBER(v), m.s.FM.Geom.BlockBits)
		t.AddRow(fmt.Sprintf("%.2f", v),
			fmt.Sprintf("%.4f", pSlow),
			fmt.Sprintf("%.4f", m.LatencyPenalty(v)),
			fmt.Sprintf("%.4f", m.EffectiveCapacity(v)),
			fmt.Sprintf("%.4f", m.Yield(v)))
	}
	return []*report.Table{t}
}
