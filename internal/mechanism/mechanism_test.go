// Package mechanism_test exercises the registry from outside so it can
// import internal/expers for the shared cache setups: expers imports
// mechanism, but the external test package sees both without a cycle.
// The differential tests pin every adapter to the direct model call
// path the Fig. 3 code used before the registry existed — float for
// float, so the golden analytical tables cannot drift through the
// refactor.
package mechanism_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ecc"
	"repro/internal/expers"
	"repro/internal/faultmodel"
	"repro/internal/fftcache"
	"repro/internal/mechanism"
	"repro/internal/waygate"
)

// testSetup builds the L1-A setup at the paper's three-level ladder
// (nLowVDDs = 2), as Fig. 3b/3d and the min-VDD table use it.
func testSetup(t *testing.T) (*expers.CacheSetup, mechanism.Setup) {
	t.Helper()
	cs, err := expers.NewCacheSetup(expers.L1ConfigA(), 3)
	if err != nil {
		t.Fatalf("NewCacheSetup: %v", err)
	}
	return cs, cs.MechanismSetup(2)
}

func newMech(t *testing.T, s mechanism.Setup, name string) mechanism.Mechanism {
	t.Helper()
	d, ok := mechanism.ByName(name)
	if !ok {
		t.Fatalf("mechanism %q not registered", name)
	}
	m, err := d.New(s)
	if err != nil {
		t.Fatalf("build %q: %v", name, err)
	}
	return m
}

func TestRegistryOrderAndDefaults(t *testing.T) {
	all := mechanism.All()
	if len(all) < 8 {
		t.Fatalf("registry has %d mechanisms, want >= 8", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].Rank >= all[i].Rank {
			t.Errorf("registry not rank-sorted: %s (%d) before %s (%d)",
				all[i-1].Name, all[i-1].Rank, all[i].Name, all[i].Rank)
		}
	}
	wantDefaults := []string{"conventional", "secded", "dected", "waygate", "fftcache", "proposed"}
	got := mechanism.DefaultNames()
	if len(got) != len(wantDefaults) {
		t.Fatalf("DefaultNames = %v, want %v", got, wantDefaults)
	}
	for i := range got {
		if got[i] != wantDefaults[i] {
			t.Fatalf("DefaultNames = %v, want %v", got, wantDefaults)
		}
	}
	for _, name := range []string{"tscache", "l2c2"} {
		d, ok := mechanism.ByName(name)
		if !ok {
			t.Fatalf("new competitor %q not registered", name)
		}
		if d.Default {
			t.Errorf("%q must not be in the default comparison set", name)
		}
	}
}

func TestResolveSelection(t *testing.T) {
	ds, err := mechanism.Resolve(nil)
	if err != nil {
		t.Fatalf("Resolve(nil): %v", err)
	}
	if len(ds) != len(mechanism.DefaultNames()) {
		t.Errorf("Resolve(nil) = %d entries, want the %d defaults", len(ds), len(mechanism.DefaultNames()))
	}
	// Selections come back in rank order regardless of request order.
	ds, err = mechanism.Resolve([]string{"proposed", "tscache", "l2c2"})
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	wantOrder := []string{"tscache", "l2c2", "proposed"}
	for i, d := range ds {
		if d.Name != wantOrder[i] {
			t.Errorf("Resolve order[%d] = %s, want %s", i, d.Name, wantOrder[i])
		}
	}
	if _, err := mechanism.Resolve([]string{"nosuch"}); err == nil || !strings.Contains(err.Error(), "unknown mechanism") {
		t.Errorf("Resolve(nosuch) error = %v, want unknown-mechanism", err)
	}
	if _, err := mechanism.Resolve([]string{"proposed", "proposed"}); err == nil || !strings.Contains(err.Error(), "listed twice") {
		t.Errorf("Resolve(dup) error = %v, want listed-twice", err)
	}
}

// TestAdapterDifferentialProposed pins the proposed adapter to the
// faultmodel/cacti call path of the pre-registry fig3a/fig3d code.
func TestAdapterDifferentialProposed(t *testing.T) {
	cs, s := testSetup(t)
	m := newMech(t, s, "proposed")
	for _, v := range faultmodel.Grid(expers.VLo, expers.VHi) {
		if got, want := m.Yield(v), cs.FM.Yield(v); got != want {
			t.Fatalf("proposed Yield(%.2f) = %v, want %v", v, got, want)
		}
		capacity := cs.FM.ExpectedCapacity(v)
		if got := m.EffectiveCapacity(v); got != capacity {
			t.Fatalf("proposed EffectiveCapacity(%.2f) = %v, want %v", v, got, capacity)
		}
		if got, want := m.StaticPower(cs.CM, v), cs.CMPCS.StaticPower(v, capacity).TotalW; got != want {
			t.Fatalf("proposed StaticPower(%.2f) = %v, want %v", v, got, want)
		}
	}
	gv, gok := m.MinVDDForYield(0.99, expers.VLo, expers.VHi)
	wv, wok := cs.FM.MinVDDForYield(0.99, expers.VLo, expers.VHi)
	if gv != wv || gok != wok {
		t.Errorf("proposed MinVDD = (%v, %v), want (%v, %v)", gv, gok, wv, wok)
	}
}

// TestAdapterDifferentialFFTCache pins the FFT-Cache adapter to a
// directly-constructed fftcache.Model.
func TestAdapterDifferentialFFTCache(t *testing.T) {
	cs, s := testSetup(t)
	m := newMech(t, s, "fftcache")
	direct := fftcache.New(cs.FM.Geom, cs.BER, fftcache.DefaultParams(), 2)
	for _, v := range faultmodel.Grid(expers.VLo, expers.VHi) {
		if got, want := m.Yield(v), direct.Yield(v); got != want {
			t.Fatalf("fftcache Yield(%.2f) = %v, want %v", v, got, want)
		}
		if got, want := m.EffectiveCapacity(v), direct.EffectiveCapacity(v); got != want {
			t.Fatalf("fftcache EffectiveCapacity(%.2f) = %v, want %v", v, got, want)
		}
		if got, want := m.StaticPower(cs.CM, v), direct.StaticPower(cs.CM, v); got != want {
			t.Fatalf("fftcache StaticPower(%.2f) = %v, want %v", v, got, want)
		}
	}
	gv, gok := m.MinVDDForYield(0.99, expers.VLo, expers.VHi)
	wv, wok := direct.MinVDDForYield(0.99, expers.VLo, expers.VHi)
	if gv != wv || gok != wok {
		t.Errorf("fftcache MinVDD = (%v, %v), want (%v, %v)", gv, gok, wv, wok)
	}
}

// TestAdapterDifferentialWayGate pins the way-gating adapter's step
// curve and power to a directly-constructed waygate.Model.
func TestAdapterDifferentialWayGate(t *testing.T) {
	cs, s := testSetup(t)
	m := newMech(t, s, "waygate")
	direct := waygate.New(cs.CM)
	sc, ok := m.(mechanism.StepCurver)
	if !ok {
		t.Fatal("waygate adapter does not implement StepCurver")
	}
	caps, watts := sc.PowerCapacityCurve()
	wcaps, wwatts := direct.PowerCapacityCurve()
	if len(caps) != len(wcaps) {
		t.Fatalf("waygate curve has %d points, want %d", len(caps), len(wcaps))
	}
	for i := range caps {
		if caps[i] != wcaps[i] || watts[i] != wwatts[i] {
			t.Fatalf("waygate curve[%d] = (%v, %v), want (%v, %v)", i, caps[i], watts[i], wcaps[i], wwatts[i])
		}
	}
	if got, want := m.StaticPower(cs.CM, 0.5), direct.StaticPower(cs.Org.Assoc); got != want {
		t.Errorf("waygate StaticPower = %v, want all-ways power %v", got, want)
	}
	if y := m.Yield(0.3); y != 1 {
		t.Errorf("waygate Yield = %v, want 1 (never leaves nominal)", y)
	}
}

// TestAdapterDifferentialECC pins the conventional/SECDED/DECTED
// adapters to directly-constructed ecc.YieldModels.
func TestAdapterDifferentialECC(t *testing.T) {
	cs, s := testSetup(t)
	direct := map[string]ecc.YieldModel{
		"conventional": ecc.NewConventional(cs.BER, cs.FM.Geom),
		"secded":       ecc.NewSECDED(cs.BER, cs.FM.Geom),
		"dected":       ecc.NewDECTED(cs.BER, cs.FM.Geom),
	}
	for name, dm := range direct {
		m := newMech(t, s, name)
		for _, v := range faultmodel.Grid(expers.VLo, expers.VHi) {
			if got, want := m.Yield(v), dm.Yield(v); got != want {
				t.Fatalf("%s Yield(%.2f) = %v, want %v", name, v, got, want)
			}
		}
		gv, gok := m.MinVDDForYield(0.99, expers.VLo, expers.VHi)
		wv, wok := dm.MinVDD(0.99, expers.VLo, expers.VHi)
		if gv != wv || gok != wok {
			t.Errorf("%s MinVDD = (%v, %v), want (%v, %v)", name, gv, gok, wv, wok)
		}
		if cap := m.EffectiveCapacity(0.5); cap != 1 {
			t.Errorf("%s EffectiveCapacity = %v, want 1 (in-place correction)", name, cap)
		}
	}
	if ao := newMech(t, s, "conventional").AreaOverhead(); ao.Fraction != 0 {
		t.Errorf("conventional area overhead = %v, want 0", ao.Fraction)
	}
}

// TestTSCacheModel checks the timing-speculation model's shape: only
// hard faults cost capacity (so it dominates the proposed scheme's
// capacity), the replay penalty is non-negative and vanishes at
// nominal voltage, and the scheme-specific table renders.
func TestTSCacheModel(t *testing.T) {
	cs, s := testSetup(t)
	m := newMech(t, s, "tscache")
	pen, ok := m.(interface{ LatencyPenalty(float64) float64 })
	if !ok {
		t.Fatal("tscache does not expose LatencyPenalty")
	}
	for _, v := range faultmodel.Grid(expers.VLo, expers.VHi) {
		propCap := cs.FM.ExpectedCapacity(v)
		if got := m.EffectiveCapacity(v); got < propCap {
			t.Fatalf("tscache capacity(%.2f) = %v < proposed %v: hard faults must be a subset", v, got, propCap)
		}
		if y := m.Yield(v); y < cs.FM.Yield(v) {
			t.Fatalf("tscache yield(%.2f) = %v < proposed %v", v, y, cs.FM.Yield(v))
		}
		if p := pen.LatencyPenalty(v); p < 0 {
			t.Fatalf("tscache penalty(%.2f) = %v < 0", v, p)
		}
	}
	if p := pen.LatencyPenalty(1.0); p > 1e-6 {
		t.Errorf("tscache penalty at nominal = %v, want ~0", p)
	}
	tb, ok := m.(mechanism.Tabler)
	if !ok {
		t.Fatal("tscache does not implement Tabler")
	}
	tables := tb.Tables(expers.VLo, expers.VHi)
	if len(tables) != 1 || len(tables[0].Rows) == 0 {
		t.Fatalf("tscache Tables: got %d tables", len(tables))
	}
}

// TestL2C2Model checks the compressed-salvaging model: salvaging
// recovers capacity the proposed scheme writes off, the salvage
// probability is a probability, and the scheme-specific table renders.
func TestL2C2Model(t *testing.T) {
	cs, s := testSetup(t)
	m := newMech(t, s, "l2c2")
	salv, ok := m.(interface{ SalvageProb(float64) float64 })
	if !ok {
		t.Fatal("l2c2 does not expose SalvageProb")
	}
	for _, v := range faultmodel.Grid(expers.VLo, expers.VHi) {
		if p := salv.SalvageProb(v); p < 0 || p > 1 {
			t.Fatalf("l2c2 SalvageProb(%.2f) = %v outside [0, 1]", v, p)
		}
		propCap := cs.FM.ExpectedCapacity(v)
		if got := m.EffectiveCapacity(v); got < propCap {
			t.Fatalf("l2c2 capacity(%.2f) = %v < proposed %v: salvage only adds", v, got, propCap)
		}
		if y := m.Yield(v); y < cs.FM.Yield(v) {
			t.Fatalf("l2c2 yield(%.2f) = %v < proposed %v", v, y, cs.FM.Yield(v))
		}
	}
	if _, ok := m.(mechanism.Tabler); !ok {
		t.Fatal("l2c2 does not implement Tabler")
	}
}

func TestPolicyRegistry(t *testing.T) {
	if got := len(mechanism.Policies()); got != 3 {
		t.Fatalf("Policies() has %d entries, want 3", got)
	}
	for name, want := range map[string]core.Mode{
		"baseline": core.Baseline, "SPCS": core.SPCS, "dpcs": core.DPCS,
	} {
		p, ok := mechanism.PolicyByName(name)
		if !ok {
			t.Fatalf("PolicyByName(%q) not found", name)
		}
		if p.Mode() != want {
			t.Errorf("PolicyByName(%q).Mode = %v, want %v", name, p.Mode(), want)
		}
	}
	if _, ok := mechanism.PolicyByName("nosuch"); ok {
		t.Error("PolicyByName(nosuch) resolved")
	}
}
