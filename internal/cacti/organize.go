package cacti

import (
	"fmt"
	"math"
)

// This file implements the organisation-exploration half of a CACTI-style
// model: partitioning the data array into subarrays (Ndwl x Ndbl, in
// CACTI's terminology: the number of wordline and bitline divisions),
// computing RC delays and switched capacitance per candidate, and picking
// the partition that minimises the energy-delay product — the same
// optimisation the paper ran ("CACTI generated optimized cache
// architectures at the nominal voltage of 1 V using an energy-delay
// metric"). The simple closed forms in Model.AccessDelayNS/AccessEnergy
// are calibrated against this explorer (see TestClosedFormsTrackExplorer)
// and remain the fast path used by the simulators.

// WireParams hold the interconnect constants of the organisation
// explorer. Defaults are ITRS-45nm-class, like the paper's CACTI setup.
type WireParams struct {
	// RPerUM and CPerUM are wire resistance (ohm/µm) and capacitance
	// (fF/µm) of intermediate-level wires.
	RPerUM float64
	CPerUM float64
	// CellWidthUM and CellHeightUM are the 6T cell's pitch.
	CellWidthUM  float64
	CellHeightUM float64
	// CGateFF is the gate capacitance of a minimum inverter (fF).
	CGateFF float64
	// CDrainFF is the drain (diffusion) capacitance per access
	// transistor on a bitline (fF).
	CDrainFF float64
	// RonOhm is the on-resistance of a minimum driver.
	RonOhm float64
	// SenseAmpDelayNS and SenseAmpEnergyFJ are per-activation constants.
	SenseAmpDelayNS  float64
	SenseAmpEnergyFJ float64
	// BitlineSwing is the fraction of VDD a bitline swings before the
	// sense amp fires.
	BitlineSwing float64
	// DecoderStageDelayNS is the delay of one decoder stage (FO4-ish).
	DecoderStageDelayNS float64
}

// DefaultWireParams returns 45 nm-class interconnect constants.
func DefaultWireParams() WireParams {
	return WireParams{
		RPerUM:              1.2,  // ohm/µm
		CPerUM:              0.20, // fF/µm
		CellWidthUM:         0.90, // 6T pitch
		CellHeightUM:        0.42,
		CGateFF:             0.9,
		CDrainFF:            0.45,
		RonOhm:              4000,
		SenseAmpDelayNS:     0.05,
		SenseAmpEnergyFJ:    4.0,
		BitlineSwing:        0.12,
		DecoderStageDelayNS: 0.035,
	}
}

// Organization is one evaluated data-array partition.
type Organization struct {
	// NDWL and NDBL are the wordline and bitline division counts: the
	// array is split into NDWL x NDBL subarrays.
	NDWL, NDBL int
	// SubRows and SubCols are one subarray's dimensions in cells.
	SubRows, SubCols int
	// AccessNS is the critical-path access time: decoder + wordline +
	// bitline + sense amp + H-tree routing.
	AccessNS float64
	// ReadEnergyPJ is the dynamic energy of one read access.
	ReadEnergyPJ float64
	// AreaMM2 is the data-array area including per-subarray periphery.
	AreaMM2 float64
	// EDP is the energy-delay product used for ranking.
	EDP float64
}

// Explore evaluates all power-of-two partitions of the organisation's
// data array up to maxDiv divisions per axis and returns every candidate,
// best (minimum energy-delay product) first. It returns an error for
// degenerate geometries.
func Explore(org Org, wp WireParams, maxDiv int) ([]Organization, error) {
	if err := org.Validate(); err != nil {
		return nil, err
	}
	if maxDiv < 1 {
		maxDiv = 1
	}
	// Logical array: one row per block (the paper's layout: a data
	// subarray row holds (part of) a single block), bits-per-block
	// columns, replicated over the ways by NDWL-style splitting.
	totalRows := org.Blocks()
	totalCols := org.BlockBits()

	var out []Organization
	for ndwl := 1; ndwl <= maxDiv; ndwl *= 2 {
		for ndbl := 1; ndbl <= maxDiv; ndbl *= 2 {
			subRows := totalRows / ndbl
			subCols := totalCols // wordline splits replicate columns across mats
			if ndwl > 1 {
				subCols = totalCols / ndwl
			}
			if subRows < 16 || subCols < 16 {
				continue // degenerate subarray
			}
			o := evaluate(org, wp, ndwl, ndbl, subRows, subCols)
			out = append(out, o)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cacti: no feasible partition for %s", org.Name)
	}
	// Selection sort by EDP: candidate lists are tiny.
	for i := range out {
		best := i
		for j := i + 1; j < len(out); j++ {
			if out[j].EDP < out[best].EDP {
				best = j
			}
		}
		out[i], out[best] = out[best], out[i]
	}
	return out, nil
}

// evaluate computes delay, energy and area for one partition.
func evaluate(org Org, wp WireParams, ndwl, ndbl, subRows, subCols int) Organization {
	// Wordline: RC of a wire across subCols cells driving subCols gates.
	wlLenUM := float64(subCols) * wp.CellWidthUM
	wlR := wp.RPerUM * wlLenUM
	wlC := wp.CPerUM*wlLenUM + float64(subCols)*wp.CGateFF
	// Elmore delay with a driver: 0.69*(Ron*C + R*C/2), fF*ohm = 1e-6 ns.
	wlDelayNS := 0.69 * (wp.RonOhm*wlC + wlR*wlC/2) * 1e-6

	// Bitline: one drain cap per row plus wire.
	blLenUM := float64(subRows) * wp.CellHeightUM
	blR := wp.RPerUM * blLenUM
	blC := wp.CPerUM*blLenUM + float64(subRows)*wp.CDrainFF
	// The cell discharges the bitline through its (weak) access path:
	// ~4x the min driver resistance, to a partial swing.
	blDelayNS := 0.69 * (4*wp.RonOhm + blR/2) * blC * 1e-6 * wp.BitlineSwing / 0.5

	// Decoder: log4 stages for subRows entries.
	stages := math.Ceil(math.Log2(float64(subRows)) / 2)
	decDelayNS := stages * wp.DecoderStageDelayNS

	// H-tree: route from the cache port to the farthest subarray.
	mats := float64(ndwl * ndbl)
	subAreaUM2 := wlLenUM * blLenUM
	htreeLenUM := math.Sqrt(subAreaUM2 * mats) // half-perimeter-ish
	htR := wp.RPerUM * htreeLenUM
	htC := wp.CPerUM * htreeLenUM
	htDelayNS := 0.69 * (wp.RonOhm*htC + htR*htC/2) * 1e-6

	accessNS := decDelayNS + wlDelayNS + blDelayNS + wp.SenseAmpDelayNS + htDelayNS

	// Energy: one wordline swings full rail, subCols bitlines swing
	// partially, subCols sense amps fire, and the H-tree carries the
	// block out. E = C*V^2 with V = 1.0 here; fF*V^2 = fJ.
	wlEnergyFJ := wlC // * 1.0^2
	blEnergyFJ := float64(subCols) * blC * wp.BitlineSwing
	saEnergyFJ := float64(subCols) * wp.SenseAmpEnergyFJ
	htEnergyFJ := htC * float64(org.BlockBits()) / 64 // burst out
	readEnergyPJ := (wlEnergyFJ + blEnergyFJ + saEnergyFJ + htEnergyFJ) * 1e-3

	// Area: cells plus per-subarray periphery strips (decoder column,
	// sense-amp row), plus H-tree routing overhead.
	cellAreaUM2 := float64(org.Blocks()*org.BlockBits()) * wp.CellWidthUM * wp.CellHeightUM
	periphUM2 := mats * (blLenUM*12*wp.CellWidthUM + wlLenUM*8*wp.CellHeightUM)
	areaMM2 := (cellAreaUM2 + periphUM2) * 1e-6 * 1.08 // routing factor

	return Organization{
		NDWL: ndwl, NDBL: ndbl,
		SubRows: subRows, SubCols: subCols,
		AccessNS:     accessNS,
		ReadEnergyPJ: readEnergyPJ,
		AreaMM2:      areaMM2,
		EDP:          accessNS * readEnergyPJ,
	}
}

// Organize returns the energy-delay-optimal partition for the
// organisation (the explorer's first result).
func Organize(org Org, wp WireParams, maxDiv int) (Organization, error) {
	all, err := Explore(org, wp, maxDiv)
	if err != nil {
		return Organization{}, err
	}
	return all[0], nil
}
