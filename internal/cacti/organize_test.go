package cacti

import (
	"testing"
)

func TestExploreReturnsCandidates(t *testing.T) {
	all, err := Explore(l1A(), DefaultWireParams(), 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 4 {
		t.Fatalf("only %d candidates", len(all))
	}
	// Sorted by EDP ascending.
	for i := 1; i < len(all); i++ {
		if all[i].EDP < all[i-1].EDP {
			t.Fatalf("candidates not sorted at %d", i)
		}
	}
	for _, o := range all {
		if o.AccessNS <= 0 || o.ReadEnergyPJ <= 0 || o.AreaMM2 <= 0 {
			t.Fatalf("non-positive metrics: %+v", o)
		}
		if o.SubRows*o.NDBL != l1A().Blocks() {
			t.Fatalf("row partition inconsistent: %+v", o)
		}
	}
}

func TestPartitioningHelps(t *testing.T) {
	// The monolithic (1x1) organisation of a large array must lose to
	// the best partition on both delay and EDP.
	org := l2A()
	all, err := Explore(org, DefaultWireParams(), 32)
	if err != nil {
		t.Fatal(err)
	}
	var mono *Organization
	for i := range all {
		if all[i].NDWL == 1 && all[i].NDBL == 1 {
			mono = &all[i]
		}
	}
	if mono == nil {
		t.Fatal("monolithic candidate missing")
	}
	best := all[0]
	if best.NDWL == 1 && best.NDBL == 1 {
		t.Fatal("monolithic organisation won for a 2 MB array")
	}
	if best.AccessNS >= mono.AccessNS {
		t.Errorf("best access %v not below monolithic %v", best.AccessNS, mono.AccessNS)
	}
	if best.EDP >= mono.EDP {
		t.Errorf("best EDP %v not below monolithic %v", best.EDP, mono.EDP)
	}
}

func TestOrganizePicksBest(t *testing.T) {
	all, err := Explore(l1A(), DefaultWireParams(), 16)
	if err != nil {
		t.Fatal(err)
	}
	best, err := Organize(l1A(), DefaultWireParams(), 16)
	if err != nil {
		t.Fatal(err)
	}
	if best != all[0] {
		t.Error("Organize disagrees with Explore head")
	}
}

func TestLargerCachesSlower(t *testing.T) {
	small, err := Organize(l1A(), DefaultWireParams(), 32)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Organize(l2A(), DefaultWireParams(), 32)
	if err != nil {
		t.Fatal(err)
	}
	if big.AccessNS <= small.AccessNS {
		t.Errorf("2MB access %v not above 64KB %v", big.AccessNS, small.AccessNS)
	}
	if big.AreaMM2 <= small.AreaMM2 {
		t.Error("2MB not larger in area")
	}
}

func TestClosedFormsTrackExplorer(t *testing.T) {
	// The fast closed forms used by the simulators must stay within a
	// factor of ~3 of the physical explorer's optimum for the paper's
	// cache sizes (they are calibrated curves, not the same model).
	wp := DefaultWireParams()
	for _, org := range []Org{l1A(), l2A()} {
		m := mustModel(t, org)
		opt, err := Organize(org, wp, 32)
		if err != nil {
			t.Fatal(err)
		}
		closed := m.AccessDelayNS(1.0)
		if ratio := closed / opt.AccessNS; ratio < 0.33 || ratio > 3 {
			t.Errorf("%s: closed-form delay %v vs explorer %v (ratio %v)",
				org.Name, closed, opt.AccessNS, ratio)
		}
	}
}

func TestExploreRejectsBadOrg(t *testing.T) {
	if _, err := Explore(Org{Name: "bad"}, DefaultWireParams(), 8); err == nil {
		t.Error("bad org accepted")
	}
}

func TestExploreTinyArrayStillFeasible(t *testing.T) {
	tiny := Org{Name: "tiny", SizeBytes: 4 << 10, Assoc: 2, BlockBytes: 64, AddrBits: 40}
	all, err := Explore(tiny, DefaultWireParams(), 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) == 0 {
		t.Fatal("no candidates for tiny array")
	}
}
