// Package cacti is an analytical cache area / static-power / dynamic-
// energy / delay model in the spirit of CACTI 6.5, which the paper
// modified to evaluate its architectures. It is deliberately compact: it
// models exactly the quantities the paper's figures need —
//
//   - static (leakage) power of the data-array cells as a function of the
//     data VDD and of the fraction of blocks that are power-gated,
//   - static power of the data periphery, tag array and fault map, which
//     sit on the always-nominal voltage domain,
//   - dynamic access energy split into a data-array part (scales ~V^2
//     with the data VDD, since the scheme never boosts for accesses) and
//     a fixed part (tag + periphery at nominal),
//   - access delay versus data VDD (alpha-power law on the cell-read
//     portion, ≈ +15 % at the lowest studied voltages), and
//   - area, including the fault-map and power-gate overheads.
//
// Magnitudes are 45 nm-class (see DESIGN.md §5); shapes are what matter.
package cacti

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/device"
)

// Org describes a cache organisation.
type Org struct {
	// Name labels the cache in reports (e.g. "L1D-A").
	Name string
	// SizeBytes is the data capacity in bytes.
	SizeBytes int
	// Assoc is the associativity (ways per set).
	Assoc int
	// BlockBytes is the cache block (line) size in bytes.
	BlockBytes int
	// AddrBits is the physical address width used for tag sizing.
	AddrBits int
	// SerialTagData selects tag-then-data sequential access (typical for
	// large L2s, reading only the matching way) instead of parallel
	// read-all-ways (typical for small L1s).
	SerialTagData bool
}

// Sets returns the number of sets.
func (o Org) Sets() int { return o.SizeBytes / (o.BlockBytes * o.Assoc) }

// Blocks returns the total number of blocks.
func (o Org) Blocks() int { return o.SizeBytes / o.BlockBytes }

// BlockBits returns the data bits per block.
func (o Org) BlockBits() int { return o.BlockBytes * 8 }

// TagBitsPerBlock returns the tag-store bits per block excluding any
// fault-tolerance metadata: tag + valid + dirty + LRU state.
func (o Org) TagBitsPerBlock() int {
	setBits := bits.Len(uint(o.Sets())) - 1
	offBits := bits.Len(uint(o.BlockBytes)) - 1
	tag := o.AddrBits - setBits - offBits
	lru := bits.Len(uint(o.Assoc)) - 1
	return tag + 2 + lru
}

// Validate checks that the organisation is well-formed (power-of-two
// sizes, non-trivial geometry).
func (o Org) Validate() error {
	if o.SizeBytes <= 0 || o.Assoc <= 0 || o.BlockBytes <= 0 {
		return fmt.Errorf("cacti: %s: non-positive geometry", o.Name)
	}
	if o.SizeBytes%(o.BlockBytes*o.Assoc) != 0 {
		return fmt.Errorf("cacti: %s: size %d not divisible by assoc*block", o.Name, o.SizeBytes)
	}
	for _, v := range []int{o.SizeBytes, o.Assoc, o.BlockBytes, o.Sets()} {
		if v&(v-1) != 0 {
			return fmt.Errorf("cacti: %s: %d is not a power of two", o.Name, v)
		}
	}
	if o.AddrBits < 32 || o.AddrBits > 64 {
		return fmt.Errorf("cacti: %s: address width %d out of [32,64]", o.Name, o.AddrBits)
	}
	return nil
}

// Params are the technology-level calibration constants of the model.
// The defaults (DefaultParams) are 45 nm-class and were calibrated so the
// reproduced figures land in the paper's ranges; every constant is
// documented so it can be re-fit to another node.
type Params struct {
	// CellAreaUM2 is the 6T SRAM cell area in µm² (≈0.374 at 45 nm).
	CellAreaUM2 float64
	// ArrayEfficiency is the fraction of array area that is cells (the
	// rest is decoders, sense amps, drivers).
	ArrayEfficiency float64
	// CellLeakEquiv is the leakage of one 6T cell in min-width RVT
	// device equivalents.
	CellLeakEquiv float64
	// PeripheryEquivPerCell is the leakage of the (LVT, always-nominal)
	// data-array periphery, expressed in min-width LVT equivalents per
	// data cell.
	PeripheryEquivPerCell float64
	// MetadataAreaFactor inflates per-bit area of small metadata fields
	// (fault map, extra tag bits) to account for their poor array
	// efficiency; the paper's "up to 4 %" fault-map area comes from this.
	MetadataAreaFactor float64
	// PowerGateAreaFrac is the area overhead of per-block gated-PMOS
	// power gates plus the level-shifting inverter (< 1 % in the paper).
	PowerGateAreaFrac float64
	// EBitReadPJ is the data-array read energy per bit read, in pJ, at
	// nominal VDD (bitline + mux + burst-out).
	EBitReadPJ float64
	// EBitWritePJ is the data-array write energy per bit, in pJ, at
	// nominal VDD.
	EBitWritePJ float64
	// EAccessFixedPJ is the per-access fixed energy (decode, tag read &
	// compare, periphery clocks) at nominal VDD, in pJ, per KB of cache
	// raised to SizeExponent — larger caches burn more per access.
	EAccessFixedPJ float64
	// SizeExponent shapes how fixed access energy grows with capacity.
	SizeExponent float64
	// DelayBaseNS and DelayPerLog2NS give the nominal access time:
	// t = DelayBaseNS + DelayPerLog2NS * log2(size/4KB).
	DelayBaseNS    float64
	DelayPerLog2NS float64
	// CellDelayFrac is the fraction of access time attributable to the
	// voltage-scaled cell read; calibrated so the min-VDD worst case is
	// ≈ +15 % as reported by the paper's CACTI runs.
	CellDelayFrac float64
}

// DefaultParams returns the calibrated 45 nm parameter set.
func DefaultParams() Params {
	return Params{
		CellAreaUM2:           0.374,
		ArrayEfficiency:       0.70,
		CellLeakEquiv:         1.0,
		PeripheryEquivPerCell: 0.027,
		MetadataAreaFactor:    4.0,
		PowerGateAreaFrac:     0.008,
		EBitReadPJ:            0.010,
		EBitWritePJ:           0.012,
		EAccessFixedPJ:        0.45,
		SizeExponent:          0.45,
		DelayBaseNS:           0.35,
		DelayPerLog2NS:        0.16,
		CellDelayFrac:         0.07,
	}
}

// Model evaluates one cache organisation in one technology.
type Model struct {
	Org    Org
	Tech   device.Tech
	Params Params
	// PCS indicates the power/capacity-scaling mechanism is present:
	// fault-map bits and power gates are added to area and power.
	PCS bool
	// FMBitsPerBlock is the fault-map width (FM bits + Faulty bit) when
	// PCS is true.
	FMBitsPerBlock int
}

// New builds a Model after validating the organisation.
func New(org Org, tech device.Tech, params Params) (*Model, error) {
	if err := org.Validate(); err != nil {
		return nil, err
	}
	if err := tech.Validate(); err != nil {
		return nil, err
	}
	return &Model{Org: org, Tech: tech, Params: params}, nil
}

// WithPCS returns a copy of the model with the PCS mechanism overheads
// enabled, carrying fmBits fault-map bits plus one Faulty bit per block.
func (m *Model) WithPCS(fmBits int) *Model {
	c := *m
	c.PCS = true
	c.FMBitsPerBlock = fmBits + 1
	return &c
}

// --- Area ---

// AreaReport decomposes the cache area in mm².
type AreaReport struct {
	DataMM2      float64 // data cells + their periphery share
	TagMM2       float64 // tag cells + periphery share
	FaultMapMM2  float64 // FM + Faulty bits (PCS only)
	PowerGateMM2 float64 // power gates + level shifters (PCS only)
	TotalMM2     float64
}

// OverheadFraction returns the PCS area overhead relative to a baseline
// without fault map or power gates.
func (a AreaReport) OverheadFraction() float64 {
	base := a.DataMM2 + a.TagMM2
	if base == 0 {
		return 0
	}
	return (a.FaultMapMM2 + a.PowerGateMM2) / base
}

// Area returns the area decomposition.
func (m *Model) Area() AreaReport {
	p := m.Params
	cellMM2 := p.CellAreaUM2 * 1e-6
	dataCells := float64(m.Org.Blocks() * m.Org.BlockBits())
	tagCells := float64(m.Org.Blocks() * m.Org.TagBitsPerBlock())
	var r AreaReport
	r.DataMM2 = dataCells * cellMM2 / p.ArrayEfficiency
	r.TagMM2 = tagCells * cellMM2 / p.ArrayEfficiency * 1.1 // CAM-ish compare logic
	if m.PCS {
		fmCells := float64(m.Org.Blocks() * m.FMBitsPerBlock)
		r.FaultMapMM2 = fmCells * cellMM2 * p.MetadataAreaFactor
		r.PowerGateMM2 = r.DataMM2 * p.PowerGateAreaFrac
	}
	r.TotalMM2 = r.DataMM2 + r.TagMM2 + r.FaultMapMM2 + r.PowerGateMM2
	return r
}

// --- Static power ---

// PowerReport decomposes static power in watts.
type PowerReport struct {
	DataCellsW     float64 // voltage-scaled data cells (minus gated blocks)
	DataPeripheryW float64 // data-array periphery at nominal VDD
	TagW           float64 // tag cells + tag periphery at nominal VDD
	FaultMapW      float64 // fault-map bits at nominal VDD (PCS only)
	TotalW         float64
}

// StaticPower returns the leakage decomposition with the data array at
// dataVDD and activeFraction of the blocks powered (the rest power-gated
// to ~zero leakage, the paper's assumption for gated blocks).
func (m *Model) StaticPower(dataVDD, activeFraction float64) PowerReport {
	if activeFraction < 0 || activeFraction > 1 {
		panic(fmt.Sprintf("cacti: active fraction %v out of [0,1]", activeFraction))
	}
	p := m.Params
	t := m.Tech
	nom := t.VDDNom
	dataCells := float64(m.Org.Blocks() * m.Org.BlockBits())
	tagCells := float64(m.Org.Blocks() * m.Org.TagBitsPerBlock())

	var r PowerReport
	r.DataCellsW = dataCells * activeFraction * p.CellLeakEquiv * t.LeakagePower(device.RVT, dataVDD)
	r.DataPeripheryW = dataCells * p.PeripheryEquivPerCell * t.LeakagePower(device.LVT, nom)
	tagCellW := tagCells * p.CellLeakEquiv * t.LeakagePower(device.RVT, nom)
	tagPeriphW := tagCells * p.PeripheryEquivPerCell * t.LeakagePower(device.LVT, nom)
	r.TagW = tagCellW + tagPeriphW
	if m.PCS {
		fmCells := float64(m.Org.Blocks() * m.FMBitsPerBlock)
		r.FaultMapW = fmCells * p.CellLeakEquiv * t.LeakagePower(device.RVT, nom)
	}
	r.TotalW = r.DataCellsW + r.DataPeripheryW + r.TagW + r.FaultMapW
	return r
}

// --- Dynamic energy ---

// EnergyReport decomposes the energy of one access in picojoules.
type EnergyReport struct {
	DataPJ  float64 // data-array portion, scales with (dataVDD/nom)^2
	FixedPJ float64 // tag + periphery portion at nominal VDD
	TotalPJ float64
}

// AccessEnergy returns the energy of one access at the given data VDD.
// For parallel tag/data organisations all ways' data are read; for
// serial ones only the matching way's block is read. Writes use the
// write energy per bit for the stored block.
func (m *Model) AccessEnergy(dataVDD float64, write bool) EnergyReport {
	p := m.Params
	bitsTouched := float64(m.Org.BlockBits())
	if !m.Org.SerialTagData && !write {
		bitsTouched *= float64(m.Org.Assoc)
	}
	perBit := p.EBitReadPJ
	if write {
		perBit = p.EBitWritePJ
	}
	var r EnergyReport
	r.DataPJ = bitsTouched * perBit * m.Tech.DynamicEnergyFactor(dataVDD)
	sizeKB := float64(m.Org.SizeBytes) / 1024
	r.FixedPJ = p.EAccessFixedPJ * math.Pow(sizeKB, p.SizeExponent)
	r.TotalPJ = r.DataPJ + r.FixedPJ
	return r
}

// --- Delay ---

// AccessDelayNS returns the access time in nanoseconds at the given data
// VDD: the periphery portion is voltage-independent (nominal domain), the
// cell-read portion follows the alpha-power law of the RVT cells.
func (m *Model) AccessDelayNS(dataVDD float64) float64 {
	p := m.Params
	sizeKB := float64(m.Org.SizeBytes) / 1024
	base := p.DelayBaseNS + p.DelayPerLog2NS*math.Log2(sizeKB/4)
	if m.Org.SerialTagData {
		base *= 1.35 // sequential tag-then-data
	}
	f := m.Tech.DelayFactor(device.RVT, dataVDD)
	if math.IsInf(f, 1) {
		return math.Inf(1)
	}
	return base * ((1 - p.CellDelayFrac) + p.CellDelayFrac*f)
}

// DelayDegradation returns the fractional slowdown at dataVDD relative to
// nominal (e.g. 0.15 for +15 %).
func (m *Model) DelayDegradation(dataVDD float64) float64 {
	return m.AccessDelayNS(dataVDD)/m.AccessDelayNS(m.Tech.VDDNom) - 1
}
