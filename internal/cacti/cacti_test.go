package cacti

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/device"
)

func l1A() Org {
	return Org{Name: "L1-A", SizeBytes: 64 << 10, Assoc: 4, BlockBytes: 64, AddrBits: 40}
}

func l2A() Org {
	return Org{Name: "L2-A", SizeBytes: 2 << 20, Assoc: 8, BlockBytes: 64, AddrBits: 40, SerialTagData: true}
}

func mustModel(t *testing.T, org Org) *Model {
	t.Helper()
	m, err := New(org, device.Tech45SOI(), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestOrgDerived(t *testing.T) {
	o := l1A()
	if o.Sets() != 256 || o.Blocks() != 1024 || o.BlockBits() != 512 {
		t.Fatalf("derived geometry: sets=%d blocks=%d bits=%d", o.Sets(), o.Blocks(), o.BlockBits())
	}
}

func TestTagBitsPerBlock(t *testing.T) {
	// 40-bit addresses, 256 sets (8 bits), 64 B blocks (6 bits):
	// tag = 26, plus valid+dirty+2 LRU bits = 30.
	if got := l1A().TagBitsPerBlock(); got != 30 {
		t.Fatalf("L1-A tag bits = %d, want 30", got)
	}
}

func TestOrgValidation(t *testing.T) {
	bads := []Org{
		{Name: "zero", SizeBytes: 0, Assoc: 4, BlockBytes: 64, AddrBits: 40},
		{Name: "npo2", SizeBytes: 96 << 10, Assoc: 3, BlockBytes: 64, AddrBits: 40},
		{Name: "blk", SizeBytes: 64 << 10, Assoc: 4, BlockBytes: 48, AddrBits: 40},
		{Name: "addr", SizeBytes: 64 << 10, Assoc: 4, BlockBytes: 64, AddrBits: 16},
		{Name: "indiv", SizeBytes: 64<<10 + 64, Assoc: 4, BlockBytes: 64, AddrBits: 40},
	}
	for _, o := range bads {
		if err := o.Validate(); err == nil {
			t.Errorf("org %s validated", o.Name)
		}
	}
	if err := l1A().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestStaticPowerDecomposition(t *testing.T) {
	m := mustModel(t, l1A())
	p := m.StaticPower(1.0, 1)
	if p.TotalW <= 0 {
		t.Fatal("non-positive total power")
	}
	sum := p.DataCellsW + p.DataPeripheryW + p.TagW + p.FaultMapW
	if math.Abs(sum-p.TotalW)/p.TotalW > 1e-12 {
		t.Fatalf("components %v != total %v", sum, p.TotalW)
	}
	if p.FaultMapW != 0 {
		t.Error("baseline model has fault-map power")
	}
	// Data cells dominate a cache's leakage.
	if p.DataCellsW < 0.5*p.TotalW {
		t.Errorf("data cells only %v of %v", p.DataCellsW, p.TotalW)
	}
}

func TestStaticPowerScalesWithVDD(t *testing.T) {
	m := mustModel(t, l1A())
	hi := m.StaticPower(1.0, 1)
	lo := m.StaticPower(0.7, 1)
	if lo.DataCellsW >= hi.DataCellsW {
		t.Error("data-cell leakage did not drop with VDD")
	}
	// Periphery and tag stay at nominal VDD: unchanged.
	if lo.DataPeripheryW != hi.DataPeripheryW || lo.TagW != hi.TagW {
		t.Error("nominal-domain power changed with data VDD")
	}
}

func TestPowerGatingScalesActiveFraction(t *testing.T) {
	m := mustModel(t, l1A())
	full := m.StaticPower(0.7, 1).DataCellsW
	half := m.StaticPower(0.7, 0.5).DataCellsW
	if math.Abs(half-full/2)/full > 1e-12 {
		t.Errorf("gated power %v, want %v", half, full/2)
	}
	if got := m.StaticPower(0.7, 0).DataCellsW; got != 0 {
		t.Errorf("fully gated cells leak %v", got)
	}
}

func TestStaticPowerMonotoneInVDD(t *testing.T) {
	m := mustModel(t, l1A())
	if err := quick.Check(func(a, b uint8) bool {
		v1 := 0.3 + float64(a%71)/100
		v2 := 0.3 + float64(b%71)/100
		if v1 > v2 {
			v1, v2 = v2, v1
		}
		return m.StaticPower(v1, 1).TotalW <= m.StaticPower(v2, 1).TotalW+1e-15
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWithPCSAddsOverheads(t *testing.T) {
	m := mustModel(t, l1A())
	pcs := m.WithPCS(2)
	if !pcs.PCS || pcs.FMBitsPerBlock != 3 {
		t.Fatalf("WithPCS fields: %v %d", pcs.PCS, pcs.FMBitsPerBlock)
	}
	if m.PCS {
		t.Error("WithPCS mutated the receiver")
	}
	if pcs.StaticPower(1, 1).FaultMapW <= 0 {
		t.Error("PCS model has no fault-map power")
	}
	if pcs.Area().TotalMM2 <= m.Area().TotalMM2 {
		t.Error("PCS area not larger than baseline")
	}
}

func TestAreaOverheadInPaperRange(t *testing.T) {
	// The paper: 2-5 % total overhead, fault map <= 4 %, gates < 1 %.
	for _, org := range []Org{l1A(), l2A()} {
		m := mustModel(t, org).WithPCS(2)
		a := m.Area()
		ov := a.OverheadFraction()
		if ov < 0.01 || ov > 0.05 {
			t.Errorf("%s total overhead %v outside 1-5%%", org.Name, ov)
		}
		if a.FaultMapMM2/(a.DataMM2+a.TagMM2) > 0.04 {
			t.Errorf("%s fault map overhead too big", org.Name)
		}
		if a.PowerGateMM2/(a.DataMM2+a.TagMM2) >= 0.01 {
			t.Errorf("%s power gates >= 1%%", org.Name)
		}
	}
}

func TestAreaScalesWithSize(t *testing.T) {
	small := mustModel(t, l1A()).Area().TotalMM2
	big := mustModel(t, l2A()).Area().TotalMM2
	// 32x the capacity must be roughly 32x the area (tags differ slightly).
	if big/small < 25 || big/small > 40 {
		t.Errorf("area ratio %v for 32x capacity", big/small)
	}
}

func TestAccessEnergyComponents(t *testing.T) {
	m := mustModel(t, l1A())
	e := m.AccessEnergy(1.0, false)
	if e.TotalPJ != e.DataPJ+e.FixedPJ || e.TotalPJ <= 0 {
		t.Fatalf("energy decomposition: %+v", e)
	}
	// Data portion scales as V^2; fixed portion does not change.
	h := m.AccessEnergy(0.5, false)
	if math.Abs(h.DataPJ-e.DataPJ/4)/e.DataPJ > 1e-12 {
		t.Errorf("data energy at half VDD %v, want %v", h.DataPJ, e.DataPJ/4)
	}
	if h.FixedPJ != e.FixedPJ {
		t.Error("fixed energy changed with data VDD")
	}
}

func TestSerialReadsOneWay(t *testing.T) {
	// Serial tag-data orgs read one block; parallel orgs read all ways.
	par := mustModel(t, l1A())
	ser := mustModel(t, Org{Name: "ser", SizeBytes: 64 << 10, Assoc: 4,
		BlockBytes: 64, AddrBits: 40, SerialTagData: true})
	ePar := par.AccessEnergy(1, false).DataPJ
	eSer := ser.AccessEnergy(1, false).DataPJ
	if math.Abs(ePar-4*eSer)/ePar > 1e-12 {
		t.Errorf("parallel %v vs serial %v: want 4x", ePar, eSer)
	}
}

func TestWritesTouchOneBlock(t *testing.T) {
	m := mustModel(t, l1A())
	w := m.AccessEnergy(1, true).DataPJ
	r := m.AccessEnergy(1, false).DataPJ
	if w >= r { // write = 512 bits * writePJ < read = 2048 bits * readPJ
		t.Errorf("write energy %v >= read %v", w, r)
	}
}

func TestAccessDelayCalibration(t *testing.T) {
	m := mustModel(t, l1A())
	nom := m.AccessDelayNS(1.0)
	if nom <= 0 {
		t.Fatal("non-positive delay")
	}
	// The paper: reducing data VDD impacts access time by roughly 15 % in
	// the worst case within the voltage range of interest (>= ~0.54 V).
	deg := m.DelayDegradation(0.54)
	if deg < 0.05 || deg > 0.20 {
		t.Errorf("delay degradation at 0.54 V = %v, want ~0.15", deg)
	}
	if m.DelayDegradation(1.0) != 0 {
		t.Error("nominal degradation nonzero")
	}
}

func TestDelayGrowsWithSize(t *testing.T) {
	if mustModel(t, l2A()).AccessDelayNS(1) <= mustModel(t, l1A()).AccessDelayNS(1) {
		t.Error("larger cache not slower")
	}
}

func TestDelayInfiniteBelowVth(t *testing.T) {
	m := mustModel(t, l1A())
	if !math.IsInf(m.AccessDelayNS(0.2), 1) {
		t.Error("delay below Vth should be +Inf")
	}
}

func TestStaticPowerPanicsOnBadFraction(t *testing.T) {
	m := mustModel(t, l1A())
	for _, f := range []float64{-0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("fraction %v accepted", f)
				}
			}()
			m.StaticPower(1, f)
		}()
	}
}

func TestNewRejectsBadInput(t *testing.T) {
	if _, err := New(Org{Name: "bad"}, device.Tech45SOI(), DefaultParams()); err == nil {
		t.Error("bad org accepted")
	}
	badTech := device.Tech45SOI()
	badTech.VDDNom = 0
	if _, err := New(l1A(), badTech, DefaultParams()); err == nil {
		t.Error("bad tech accepted")
	}
}
